"""Front ends of the scheduling service: stdin JSON lines and TCP/HTTP.

Both front ends speak the same protocol -- one JSON request object per
line, one JSON response object per line -- and both feed
:meth:`~repro.service.daemon.SchedulingService.handle` concurrently (one
task per request line), which is what lets concurrent identical requests
coalesce even when they arrive on one connection.

* **stdin**: requests on stdin, responses on stdout.  Announces
  ``{"event": "ready"}`` once serving; exits on EOF, a ``shutdown``
  request, or a requested service shutdown.
* **TCP**: a line-protocol socket server.  Announces
  ``{"event": "listening", "host": ..., "port": ...}`` on stdout (with
  the *resolved* port, so tests can bind ``--port 0``).  Connections that
  open with an HTTP verb get a minimal HTTP/1.1 view instead: ``POST``
  with a JSON body serves any request, ``GET /ping`` and ``GET /stats``
  map to the control kinds, and typed errors map to 4xx/5xx statuses.

A client that disconnects mid-request never disturbs the daemon: the
computation finishes, populates the warm cache, and only the response
write is dropped (counted in ``stats.client_disconnects``).
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import IO

from repro.service import protocol
from repro.service.daemon import SchedulingService
from repro.service.protocol import error_response

#: HTTP status per typed error code (``ok`` responses are 200).
_HTTP_STATUS = {
    protocol.ERROR_BAD_REQUEST: 400,
    protocol.ERROR_BAD_DESIGN: 422,
    protocol.ERROR_OVERLOADED: 429,
    protocol.ERROR_SHUTDOWN: 503,
    protocol.ERROR_DEADLINE: 504,
    protocol.ERROR_WORKER_CRASH: 500,
    protocol.ERROR_INTERNAL: 500,
}

_HTTP_REASON = {200: "OK", 400: "Bad Request", 422: "Unprocessable Entity",
                429: "Too Many Requests", 500: "Internal Server Error",
                503: "Service Unavailable", 504: "Gateway Timeout"}


def _decode_line(line: str) -> tuple[object | None, dict | None]:
    """Parse one request line; returns ``(request, error_response)``."""
    try:
        return json.loads(line), None
    except json.JSONDecodeError as error:
        return None, error_response(protocol.ERROR_BAD_REQUEST,
                                    f"request line is not JSON: {error}")


async def serve_stdin(service: SchedulingService,
                      instream: IO[str] | None = None,
                      outstream: IO[str] | None = None) -> None:
    """Serve JSON-lines requests from a text stream (stdin by default)."""
    instream = instream if instream is not None else sys.stdin
    outstream = outstream if outstream is not None else sys.stdout
    loop = asyncio.get_running_loop()
    write_lock = asyncio.Lock()
    tasks: set[asyncio.Task] = set()

    async def emit(response: dict) -> None:
        async with write_lock:
            outstream.write(json.dumps(response) + "\n")
            outstream.flush()

    async def respond(line: str) -> None:
        raw, decode_error = _decode_line(line)
        await emit(decode_error if decode_error is not None
                   else await service.handle(raw))

    await emit({"event": "ready"})
    closing = asyncio.ensure_future(service.wait_closing())
    try:
        while not service.closing:
            reader = asyncio.ensure_future(
                loop.run_in_executor(None, instream.readline))
            done, _ = await asyncio.wait({reader, closing},
                                         return_when=asyncio.FIRST_COMPLETED)
            if reader not in done:
                # Shutdown requested while blocked on input; the reader
                # thread stays parked on the stream until process exit.
                reader.cancel()
                break
            line = reader.result()
            if not line:  # EOF
                break
            if not line.strip():
                continue
            task = asyncio.create_task(respond(line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
    finally:
        closing.cancel()


async def _write_line(service: SchedulingService, writer: asyncio.StreamWriter,
                      lock: asyncio.Lock, response: dict) -> None:
    async with lock:
        if writer.is_closing():
            service.stats.client_disconnects += 1
            return
        try:
            writer.write((json.dumps(response) + "\n").encode())
            await writer.drain()
        except (ConnectionError, RuntimeError):
            service.stats.client_disconnects += 1


async def _handle_http(service: SchedulingService, request_line: bytes,
                       reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
    """One-shot HTTP/1.1 exchange (Connection: close semantics)."""
    parts = request_line.decode("latin-1").split()
    method = parts[0] if parts else ""
    target = parts[1] if len(parts) > 1 else "/"
    content_length = 0
    while True:  # drain headers
        header = await reader.readline()
        if header in (b"", b"\r\n", b"\n"):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                content_length = 0
    if method == "GET":
        kind = {"/ping": "ping", "/stats": "stats"}.get(target)
        if kind is None:
            response = error_response(protocol.ERROR_BAD_REQUEST,
                                      f"GET {target} is not served; try "
                                      "/ping or /stats")
        else:
            response = await service.handle({"kind": kind})
    elif method == "POST":
        body = await reader.readexactly(content_length) if content_length else b""
        try:
            raw = json.loads(body) if body else None
        except json.JSONDecodeError as error:
            raw = None
            response = error_response(protocol.ERROR_BAD_REQUEST,
                                      f"request body is not JSON: {error}")
        else:
            response = await service.handle(raw)
    else:
        response = error_response(protocol.ERROR_BAD_REQUEST,
                                  f"method {method!r} is not served")
    status = (200 if response.get("ok")
              else _HTTP_STATUS.get(response.get("error"), 500))
    payload = (json.dumps(response) + "\n").encode()
    head = (f"HTTP/1.1 {status} {_HTTP_REASON.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1")
    try:
        writer.write(head + payload)
        await writer.drain()
    except (ConnectionError, RuntimeError):
        service.stats.client_disconnects += 1


async def _handle_connection(service: SchedulingService,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    lock = asyncio.Lock()
    tasks: set[asyncio.Task] = set()

    async def respond(line: str) -> None:
        raw, decode_error = _decode_line(line)
        response = (decode_error if decode_error is not None
                    else await service.handle(raw))
        await _write_line(service, writer, lock, response)

    try:
        first = await reader.readline()
        if first[:5] in (b"POST ", b"GET /", b"HEAD ", b"PUT /"):
            await _handle_http(service, first, reader, writer)
            return
        line = first
        while line:
            text = line.decode(errors="replace")
            if text.strip():
                task = asyncio.create_task(respond(text))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        service.stats.client_disconnects += 1
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass


async def serve_tcp(service: SchedulingService, host: str = "127.0.0.1",
                    port: int = 0, announce: IO[str] | None = None) -> None:
    """Serve the line protocol (with the HTTP view) on a TCP socket.

    Runs until the service's shutdown event fires (a ``shutdown``
    request, :meth:`~SchedulingService.request_shutdown`, or SIGINT
    handled by the CLI).  ``port=0`` binds an ephemeral port; the
    resolved one is announced as a ``listening`` event line.
    """
    announce = announce if announce is not None else sys.stdout

    async def on_connection(reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        await _handle_connection(service, reader, writer)

    server = await asyncio.start_server(on_connection, host=host, port=port)
    bound = server.sockets[0].getsockname()
    announce.write(json.dumps({"event": "listening", "host": bound[0],
                               "port": bound[1]}) + "\n")
    announce.flush()
    async with server:
        await service.wait_closing()


__all__ = ["serve_stdin", "serve_tcp"]
