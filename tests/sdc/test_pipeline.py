"""Tests for pipeline register counting and slack reporting."""

import pytest

from repro.sdc.pipeline import PipelineAnalyzer, count_pipeline_registers
from repro.sdc.scheduler import Schedule, SdcScheduler
from repro.tech.delay_model import OperatorModel


def _manual_schedule(graph, assignment, clock=2500.0):
    return Schedule(graph=graph, clock_period_ps=clock, stages=assignment)


class TestRegisterCounting:
    def test_single_stage_counts_only_output_flops(self, adder_chain_graph):
        stages = {nid: 0 for nid in adder_chain_graph.node_ids()}
        schedule = _manual_schedule(adder_chain_graph, stages)
        total, per_boundary = count_pipeline_registers(schedule)
        # Only the OUTPUT node's 16-bit flop at the pipeline exit.
        assert total == 16
        assert per_boundary == []

    def test_boundary_crossing_counts_width(self, diamond_graph):
        names = {n.name: n.node_id for n in diamond_graph.nodes()}
        stages = {nid: 0 for nid in diamond_graph.node_ids()}
        stages[names["join"]] = 1
        output = diamond_graph.users_of(names["join"])[0]
        stages[output] = 1
        schedule = _manual_schedule(diamond_graph, stages)
        total, per_boundary = count_pipeline_registers(schedule)
        # left (8b) and right (8b) cross the boundary, plus the 8-bit output flop.
        assert per_boundary == [16]
        assert total == 16 + 8

    def test_multi_stage_lifetime_counts_every_boundary(self, adder_chain_graph):
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        stages = {nid: 0 for nid in adder_chain_graph.node_ids()}
        stages[names["product"]] = 2
        output = adder_chain_graph.users_of(names["product"])[0]
        stages[output] = 2
        schedule = _manual_schedule(adder_chain_graph, stages)
        total, per_boundary = count_pipeline_registers(schedule)
        # x (16b) and s3 (16b) must survive to stage 2: 2 boundaries each.
        assert len(per_boundary) == 2
        assert per_boundary[0] == per_boundary[1] == 32
        assert total == 32 * 2 + 16  # crossings + output flop

    def test_constants_never_registered(self):
        from repro.ir.builder import GraphBuilder

        builder = GraphBuilder("const_reg")
        x = builder.param("x", 8)
        c = builder.constant(3, 8)
        total = builder.add(x, c)
        builder.output(total)
        stages = {x.node_id: 0, c.node_id: 0, total.node_id: 1,
                  builder.graph.users_of(total.node_id)[0]: 1}
        schedule = _manual_schedule(builder.graph, stages)
        counted, per_boundary = count_pipeline_registers(schedule)
        assert per_boundary == [8]  # only x crosses; the constant does not
        assert counted == 8 + 8


class TestPipelineAnalyzer:
    def test_report_consistency(self, adder_chain_graph, synthesis_flow):
        scheduler = SdcScheduler(OperatorModel(pessimism=1.0),
                                 clock_period_ps=1500.0)
        schedule = scheduler.schedule(adder_chain_graph).schedule
        analyzer = PipelineAnalyzer(flow=synthesis_flow)
        report = analyzer.report(schedule)
        assert report.num_stages == schedule.num_stages
        assert len(report.stage_delays_ps) == report.num_stages
        assert report.worst_stage_delay_ps == max(report.stage_delays_ps)
        assert report.slack_ps == pytest.approx(
            1500.0 - report.worst_stage_delay_ps
            - analyzer.library.register_delay_ps)
        assert report.num_registers == count_pipeline_registers(schedule)[0]

    def test_slack_non_negative_for_generous_clock(self, adder_chain_graph,
                                                   synthesis_flow):
        scheduler = SdcScheduler(OperatorModel(pessimism=1.2),
                                 clock_period_ps=6000.0)
        schedule = scheduler.schedule(adder_chain_graph).schedule
        report = PipelineAnalyzer(flow=synthesis_flow).report(schedule)
        assert report.slack_ps >= 0.0
