"""Tests for difference constraints and the constraint system."""

from repro.sdc.constraints import ConstraintSystem, DifferenceConstraint, count_by_kind


class TestDifferenceConstraint:
    def test_satisfaction(self):
        constraint = DifferenceConstraint(u=1, v=2, bound=-1)
        assert constraint.is_satisfied({1: 0, 2: 2})
        assert constraint.is_satisfied({1: 1, 2: 2})
        assert not constraint.is_satisfied({1: 2, 2: 2})


class TestConstraintSystem:
    def test_add_and_deduplicate(self):
        system = ConstraintSystem()
        assert system.add(1, 2, 0)
        assert not system.add(1, 2, 0)
        assert system.add(1, 2, -1)  # different bound is a new constraint
        assert len(system) == 2
        assert system.variables == {1, 2}

    def test_dependency_and_timing_helpers(self):
        system = ConstraintSystem()
        system.add_dependency(producer=0, consumer=1)
        system.add_timing(source=0, sink=2, min_distance=3)
        kinds = count_by_kind(system)
        assert kinds == {"dependency": 1, "timing": 1}
        dependency = system.constraints("dependency")[0]
        assert dependency.u == 0 and dependency.v == 1 and dependency.bound == 0
        timing = system.constraints("timing")[0]
        assert timing.bound == -3

    def test_violations(self):
        system = ConstraintSystem()
        system.add_dependency(0, 1)
        system.add_timing(0, 1, 2)
        good = {0: 0, 1: 2}
        bad = {0: 0, 1: 1}
        assert system.is_feasible_schedule(good)
        assert not system.is_feasible_schedule(bad)
        assert len(system.violations(bad)) == 1

    def test_pins_checked_in_violations(self):
        system = ConstraintSystem()
        system.pin(5, 0)
        assert not system.is_feasible_schedule({5: 1})
        assert system.is_feasible_schedule({5: 0})

    def test_merge(self):
        first = ConstraintSystem()
        first.add_dependency(0, 1)
        second = ConstraintSystem()
        second.pin(2, 0)
        second.add_timing(1, 2, 1)
        first.merge(second)
        assert first.variables == {0, 1, 2}
        assert first.pinned == {2: 0}
        assert len(first) == 2
