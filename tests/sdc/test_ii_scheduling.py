"""Tests for initiation-interval scheduling: constraints, search, verifier."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.verify import IRVerificationError, verify_ii_schedule
from repro.sdc.delays import critical_path_matrix, node_delays
from repro.sdc.loops import min_feasible_ii
from repro.sdc.problem import ScheduleProblem
from repro.sdc.scheduler import SdcScheduler
from repro.sdc.solver import SdcInfeasibleError, solve_problem
from repro.tech.delay_model import OperatorModel


@pytest.fixture(scope="module")
def model():
    return OperatorModel(pessimism=1.0)


def _accumulator():
    """One-add recurrence: schedulable at II 1 under any sane clock."""
    builder = GraphBuilder("accum")
    x = builder.param("x", 16)
    zero = builder.constant(0, 16)
    acc = builder.phi(zero, name="acc")
    total = builder.add(acc, x, name="total")
    builder.output(total)
    builder.back_edge(acc, total, distance=1)
    return builder.graph


def _mul_chain_loop(num_muls: int, distance: int = 1):
    """A recurrence through ``num_muls`` chained multiplies.

    At a clock that fits one multiply per stage, the recurrence needs
    ``num_muls`` stages, so the minimum II is
    ``ceil(num_muls / distance)``.
    """
    builder = GraphBuilder(f"mulchain{num_muls}")
    x = builder.param("x", 16)
    one = builder.constant(1, 16)
    acc = builder.phi(one, name="acc")
    value = acc
    for index in range(num_muls):
        value = builder.mul(value, x, name=f"m{index}", width=16)
    builder.output(value)
    builder.back_edge(acc, value, distance=distance)
    return builder.graph


def _problem(graph, model, clock_ps):
    scheduler = SdcScheduler(model, clock_period_ps=clock_ps)
    delays = node_delays(graph, model)
    matrix, index_of = critical_path_matrix(graph, delays)
    return ScheduleProblem(graph, matrix, index_of,
                           scheduler.timing_budget_ps)


class TestMinFeasibleIi:
    def test_single_cycle_recurrence_gets_ii_one(self, model):
        problem = _problem(_accumulator(), model, 2500.0)
        ii, stages = min_feasible_ii(problem)
        assert ii == 1
        assert problem.ii == 1
        assert stages

    def test_three_mul_recurrence_needs_ii_three(self, model):
        graph = _mul_chain_loop(3)
        problem = _problem(graph, model, 2500.0)
        ii, stages = min_feasible_ii(problem)
        assert ii == 3
        verify_ii_schedule(graph, stages, ii)

    def test_distance_relaxes_the_recurrence(self, model):
        graph = _mul_chain_loop(3, distance=3)
        ii, stages = min_feasible_ii(_problem(graph, model, 2500.0))
        assert ii == 1
        verify_ii_schedule(graph, stages, ii)

    def test_probe_trace_is_bracket_then_bisect(self, model):
        trace = []
        problem = _problem(_mul_chain_loop(3), model, 2500.0)
        min_feasible_ii(problem,
                        on_probe=lambda ii, ok, _: trace.append((ii, ok)))
        # 1 infeasible, doubled to 2 (infeasible), 4 (feasible), bisect 3.
        assert trace == [(1, False), (2, False), (4, True), (3, True)]

    def test_problem_left_rebased_at_answer(self, model):
        problem = _problem(_mul_chain_loop(5), model, 2500.0)
        ii, _ = min_feasible_ii(problem)
        assert problem.ii == ii
        # A fresh solve at the final rebased state is feasible...
        assert solve_problem(problem)
        # ...and one II below is not.
        problem.rebase_ii(ii - 1)
        with pytest.raises(SdcInfeasibleError):
            solve_problem(problem)

    def test_max_ii_cap_raises_when_exceeded(self, model):
        problem = _problem(_mul_chain_loop(4), model, 2500.0)
        with pytest.raises(SdcInfeasibleError):
            min_feasible_ii(problem, max_ii=2)
        with pytest.raises(ValueError):
            min_feasible_ii(problem, max_ii=0)

    def test_warm_rebase_matches_cold_build(self, model):
        """rebase_ii patching equals building the problem at that II."""
        graph = _mul_chain_loop(3)
        scheduler = SdcScheduler(model, clock_period_ps=2500.0)
        delays = node_delays(graph, model)
        matrix, index_of = critical_path_matrix(graph, delays)
        warm = ScheduleProblem(graph, matrix, index_of,
                               scheduler.timing_budget_ps)
        for ii in (3, 5, 2, 4):
            warm.rebase_ii(ii)
            cold = ScheduleProblem(graph, matrix, index_of,
                                   scheduler.timing_budget_ps, ii=ii)
            try:
                warm_stages = solve_problem(warm)
            except SdcInfeasibleError:
                with pytest.raises(SdcInfeasibleError):
                    solve_problem(cold)
                continue
            assert warm_stages == solve_problem(cold)

    def test_rebase_ii_counts_bound_patches(self, model):
        problem = _problem(_mul_chain_loop(2), model, 2500.0)
        before = problem.bound_patches
        assert problem.rebase_ii(4) is True
        assert problem.bound_patches == before + 1  # one back-edge
        assert problem.rebase_ii(4) is False  # no-op at the same II


class TestSchedulerAutoIi:
    def test_dag_schedules_at_ii_one(self, adder_chain_graph, model):
        result = SdcScheduler(model, clock_period_ps=2500.0).schedule(
            adder_chain_graph)
        assert result.schedule.ii == 1

    def test_loop_graph_gets_minimum_ii(self, model):
        graph = _mul_chain_loop(3)
        result = SdcScheduler(model, clock_period_ps=2500.0).schedule(graph)
        assert result.schedule.ii == 3
        verify_ii_schedule(graph, result.schedule.stages, result.schedule.ii)

    def test_every_emitted_schedule_verifies(self, model):
        for num_muls in (1, 2, 4):
            for distance in (1, 2):
                graph = _mul_chain_loop(num_muls, distance=distance)
                result = SdcScheduler(model, clock_period_ps=2500.0).schedule(
                    graph)
                verify_ii_schedule(graph, result.schedule.stages,
                                   result.schedule.ii)


class TestVerifyIiSchedule:
    def test_rejects_ii_below_recurrence(self, model):
        graph = _mul_chain_loop(3)
        result = SdcScheduler(model, clock_period_ps=2500.0).schedule(graph)
        with pytest.raises(IRVerificationError):
            verify_ii_schedule(graph, result.schedule.stages, ii=1)

    def test_rejects_missing_node(self):
        graph = _accumulator()
        with pytest.raises(IRVerificationError, match="missing"):
            verify_ii_schedule(graph, {}, ii=1)

    def test_rejects_backwards_dependency(self):
        graph = _accumulator()
        stages = {n.node_id: 0 for n in graph.nodes()}
        out = max(stages)  # output node is created last
        stages[out] = -1
        with pytest.raises(IRVerificationError, match="after"):
            verify_ii_schedule(graph, stages, ii=1)

    def test_rejects_non_positive_ii(self):
        graph = _accumulator()
        stages = {n.node_id: 0 for n in graph.nodes()}
        with pytest.raises(IRVerificationError, match="II"):
            verify_ii_schedule(graph, stages, ii=0)
