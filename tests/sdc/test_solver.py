"""Tests for the SDC solvers (ASAP/ALAP propagation and the LP)."""

import pytest

from repro.sdc.constraints import ConstraintSystem
from repro.sdc.solver import SdcInfeasibleError, solve_alap, solve_asap, solve_lp


def _chain_system(length=4, distance=1):
    """0 -> 1 -> 2 -> ... with a minimum distance between neighbours."""
    system = ConstraintSystem()
    for i in range(length - 1):
        system.add_timing(i, i + 1, distance)
    system.pin(0, 0)
    return system


class TestAsapAlap:
    def test_asap_chain(self):
        schedule = solve_asap(_chain_system())
        assert schedule == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_asap_dependency_only_collapses_to_zero(self):
        system = ConstraintSystem()
        system.add_dependency(0, 1)
        system.add_dependency(1, 2)
        assert solve_asap(system) == {0: 0, 1: 0, 2: 0}

    def test_alap_pushes_late(self):
        system = ConstraintSystem()
        system.add_timing(0, 1, 1)
        system.add_variable(2)  # unconstrained node floats to the latency bound
        schedule = solve_alap(system, latency=5)
        assert schedule[1] == 5
        assert schedule[0] == 4
        assert schedule[2] == 5

    def test_alap_too_small_latency_raises(self):
        with pytest.raises(SdcInfeasibleError):
            solve_alap(_chain_system(length=5), latency=2)

    def test_infeasible_pin_detected(self):
        system = ConstraintSystem()
        system.pin(0, 0)
        system.pin(1, 0)
        system.add_timing(0, 1, 2)
        with pytest.raises(SdcInfeasibleError):
            solve_asap(system)

    def test_positive_cycle_detected(self):
        system = ConstraintSystem()
        system.add_timing(0, 1, 1)
        system.add_timing(1, 0, 1)
        with pytest.raises(SdcInfeasibleError):
            solve_asap(system)


class TestLp:
    def test_lp_respects_constraints(self):
        system = _chain_system(length=5, distance=2)
        schedule = solve_lp(system)
        assert system.is_feasible_schedule(schedule)
        assert all(isinstance(v, int) for v in schedule.values())

    def test_lp_minimises_weighted_lifetimes(self):
        # Node 0 produces a wide value consumed by node 3; nodes 1, 2 are an
        # unrelated chain forcing 3 to be late unless lifetimes are optimised.
        system = ConstraintSystem()
        system.pin(0, 0)
        system.pin(1, 0)
        system.add_timing(1, 2, 2)
        system.add_dependency(0, 3)
        system.add_dependency(2, 3)
        weights = {0: 64.0}
        users = {0: [3]}
        schedule = solve_lp(system, weights, users)
        # The wide value's lifetime is s_3 - s_0 = s_3; the LP cannot shrink
        # it below the chain-imposed 2, but must not stretch it further.
        assert schedule[3] == 2

    def test_lp_prefers_early_schedules_as_tie_break(self):
        system = ConstraintSystem()
        system.pin(0, 0)
        system.add_dependency(0, 1)
        schedule = solve_lp(system)
        assert schedule[1] == 0

    def test_lp_with_no_constraints(self):
        system = ConstraintSystem()
        system.add_variable(7)
        assert solve_lp(system)[7] == 0

    def test_lp_infeasible_raises(self):
        system = ConstraintSystem()
        system.pin(0, 0)
        system.pin(1, 0)
        system.add_timing(0, 1, 1)
        with pytest.raises(SdcInfeasibleError):
            solve_lp(system)

    def test_lp_matches_asap_when_no_objective(self):
        system = _chain_system(length=6, distance=1)
        assert solve_lp(system) == solve_asap(system)
