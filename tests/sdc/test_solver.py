"""Tests for the SDC solvers (ASAP/ALAP propagation and the LP)."""

import pytest

from repro.designs.arith import (
    build_binary_divide,
    build_fpexp32,
    build_rrot,
)
from repro.sdc.constraints import ConstraintSystem
from repro.sdc.delays import critical_path_matrix, node_delays
from repro.sdc.scheduler import SdcScheduler
from repro.sdc.solver import SdcInfeasibleError, solve_alap, solve_asap, solve_lp
from repro.tech.delay_model import OperatorModel


def _chain_system(length=4, distance=1):
    """0 -> 1 -> 2 -> ... with a minimum distance between neighbours."""
    system = ConstraintSystem()
    for i in range(length - 1):
        system.add_timing(i, i + 1, distance)
    system.pin(0, 0)
    return system


class TestAsapAlap:
    def test_asap_chain(self):
        schedule = solve_asap(_chain_system())
        assert schedule == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_asap_dependency_only_collapses_to_zero(self):
        system = ConstraintSystem()
        system.add_dependency(0, 1)
        system.add_dependency(1, 2)
        assert solve_asap(system) == {0: 0, 1: 0, 2: 0}

    def test_alap_pushes_late(self):
        system = ConstraintSystem()
        system.add_timing(0, 1, 1)
        system.add_variable(2)  # unconstrained node floats to the latency bound
        schedule = solve_alap(system, latency=5)
        assert schedule[1] == 5
        assert schedule[0] == 4
        assert schedule[2] == 5

    def test_alap_too_small_latency_raises(self):
        with pytest.raises(SdcInfeasibleError):
            solve_alap(_chain_system(length=5), latency=2)

    def test_infeasible_pin_detected(self):
        system = ConstraintSystem()
        system.pin(0, 0)
        system.pin(1, 0)
        system.add_timing(0, 1, 2)
        with pytest.raises(SdcInfeasibleError):
            solve_asap(system)

    def test_positive_cycle_detected(self):
        system = ConstraintSystem()
        system.add_timing(0, 1, 1)
        system.add_timing(1, 0, 1)
        with pytest.raises(SdcInfeasibleError):
            solve_asap(system)

    def test_positive_cycle_error_names_a_variable(self):
        system = ConstraintSystem()
        system.add_timing(0, 1, 1)
        system.add_timing(1, 2, 1)
        system.add_timing(2, 0, 1)
        with pytest.raises(SdcInfeasibleError,
                           match=r"diverged at variable s_\d"):
            solve_asap(system)

    def test_large_legitimate_system_does_not_false_positive(self):
        # A long chain with large distances needs many total relaxations --
        # far more than a small global update budget would allow -- but has
        # no positive cycle, so per-variable chain detection must accept it.
        length = 200
        system = ConstraintSystem()
        for i in range(length - 1):
            system.add_timing(i, i + 1, 5)
        # Side chains joining the trunk multiply the relaxation traffic.
        for i in range(0, length - 1, 10):
            system.add_timing(1000 + i, i + 1, 3)
        system.pin(0, 0)
        schedule = solve_asap(system)
        assert schedule[length - 1] == 5 * (length - 1)
        assert system.is_feasible_schedule(schedule)


class TestAlapCoverage:
    """Satellite coverage for solve_alap: mirroring, infeasibility, bounds."""

    def test_pinned_variables_are_mirrored(self):
        # Pin a variable mid-schedule: ALAP must keep it exactly there,
        # which exercises the latency - pin mirroring of the pins.
        system = ConstraintSystem()
        system.pin(1, 2)
        system.add_timing(0, 1, 1)
        system.add_timing(1, 2, 1)
        schedule = solve_alap(system, latency=6)
        assert schedule[1] == 2
        assert schedule[0] <= 1      # must finish a cycle before the pin
        assert schedule[2] == 6      # floats to the latency bound
        assert system.is_feasible_schedule(schedule)

    def test_pin_beyond_latency_is_infeasible(self):
        system = ConstraintSystem()
        system.pin(0, 4)
        system.add_timing(0, 1, 2)
        with pytest.raises(SdcInfeasibleError):
            solve_alap(system, latency=5)

    def test_latency_too_small_names_the_limit(self):
        # No pins: the mirrored solve succeeds but the back-transformed
        # schedule would need negative time steps, the dedicated
        # "latency too small" failure path.
        system = ConstraintSystem()
        for i in range(5):
            system.add_timing(i, i + 1, 2)
        with pytest.raises(SdcInfeasibleError, match="too small"):
            solve_alap(system, latency=3)

    @pytest.mark.parametrize("build", [
        lambda: build_rrot(width=32, num_rounds=6),
        lambda: build_binary_divide(width=8),
        lambda: build_fpexp32(polynomial_degree=3, num_segments=2),
    ], ids=["rrot", "binary-divide", "fpexp32"])
    def test_alap_dominates_asap_on_arith_designs(self, build):
        graph = build()
        scheduler = SdcScheduler(delay_model=OperatorModel(),
                                 clock_period_ps=5000.0)
        delays = node_delays(graph, scheduler.delay_model)
        matrix, index_of = critical_path_matrix(graph, delays)
        system = scheduler.build_constraints(graph, matrix, index_of)
        asap = solve_asap(system)
        latency = max(asap.values())
        alap = solve_alap(system, latency)
        assert system.is_feasible_schedule(alap)
        for variable in system.variables:
            assert alap[variable] >= asap[variable]
        for node_id, pin in system.pinned.items():
            assert alap[node_id] == pin


class TestLp:
    def test_lp_respects_constraints(self):
        system = _chain_system(length=5, distance=2)
        schedule = solve_lp(system)
        assert system.is_feasible_schedule(schedule)
        assert all(isinstance(v, int) for v in schedule.values())

    def test_lp_minimises_weighted_lifetimes(self):
        # Node 0 produces a wide value consumed by node 3; nodes 1, 2 are an
        # unrelated chain forcing 3 to be late unless lifetimes are optimised.
        system = ConstraintSystem()
        system.pin(0, 0)
        system.pin(1, 0)
        system.add_timing(1, 2, 2)
        system.add_dependency(0, 3)
        system.add_dependency(2, 3)
        weights = {0: 64.0}
        users = {0: [3]}
        schedule = solve_lp(system, weights, users)
        # The wide value's lifetime is s_3 - s_0 = s_3; the LP cannot shrink
        # it below the chain-imposed 2, but must not stretch it further.
        assert schedule[3] == 2

    def test_lp_prefers_early_schedules_as_tie_break(self):
        system = ConstraintSystem()
        system.pin(0, 0)
        system.add_dependency(0, 1)
        schedule = solve_lp(system)
        assert schedule[1] == 0

    def test_lp_with_no_constraints(self):
        system = ConstraintSystem()
        system.add_variable(7)
        assert solve_lp(system)[7] == 0

    def test_lp_infeasible_raises(self):
        system = ConstraintSystem()
        system.pin(0, 0)
        system.pin(1, 0)
        system.add_timing(0, 1, 1)
        with pytest.raises(SdcInfeasibleError):
            solve_lp(system)

    def test_lp_matches_asap_when_no_objective(self):
        system = _chain_system(length=6, distance=1)
        assert solve_lp(system) == solve_asap(system)
