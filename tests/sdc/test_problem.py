"""Tests for the persistent ScheduleProblem and its delta timing updates."""

import numpy as np
import pytest

from repro.designs.arith import build_rrot
from repro.sdc.constraints import ConstraintSystem
from repro.sdc.delays import NOT_CONNECTED, critical_path_matrix, node_delays
from repro.sdc.problem import ScheduleProblem, assemble_lp
from repro.sdc.scheduler import SdcScheduler
from repro.sdc.solver import FullSolver, IncrementalSolver, create_solver, solve_lp
from repro.tech.delay_model import OperatorModel

CLOCK_PS = 2500.0


@pytest.fixture()
def rrot_setup():
    """Graph, naive delay matrix and a ScheduleProblem for a small design."""
    graph = build_rrot(width=32, num_rounds=6)
    scheduler = SdcScheduler(delay_model=OperatorModel(),
                             clock_period_ps=CLOCK_PS)
    delays = node_delays(graph, scheduler.delay_model)
    matrix, index_of = critical_path_matrix(graph, delays)
    problem = ScheduleProblem(graph, matrix, index_of,
                              scheduler.timing_budget_ps)
    return graph, matrix, index_of, problem, scheduler


class TestConstraintRowIdentity:
    def test_timing_rows_recorded(self):
        system = ConstraintSystem()
        system.add_dependency(0, 1)
        system.add_timing(0, 2, 3)
        assert system.timing_bound(0, 2) == -3
        assert system.timing_bound(0, 1) is None
        assert system.num_timing_pairs() == 1

    def test_set_timing_bound_keeps_row(self):
        system = ConstraintSystem()
        system.add_timing(0, 1, 3)
        system.add_timing(1, 2, 2)
        row = system.timing_row(0, 1)
        assert system.set_timing_bound(0, 1, -2)
        assert system.timing_row(0, 1) == row
        assert system.constraint_at(row).bound == -2
        assert system.constraint_at(row).kind == "timing"
        assert system.timing_bound(0, 1) == -2
        # Unchanged bound is a no-op.
        assert not system.set_timing_bound(0, 1, -2)

    def test_set_timing_bound_missing_pair_raises(self):
        system = ConstraintSystem()
        with pytest.raises(KeyError):
            system.set_timing_bound(3, 4, -1)


class TestScheduleProblem:
    def test_system_matches_scratch_build(self, rrot_setup):
        graph, matrix, index_of, problem, scheduler = rrot_setup
        scratch = scheduler.build_constraints(graph, matrix, index_of)
        assert [(c.u, c.v, c.bound, c.kind) for c in problem.system] == \
            [(c.u, c.v, c.bound, c.kind) for c in scratch]
        assert problem.system.pinned == scratch.pinned

    def test_weights_and_users_cached(self, rrot_setup):
        _, _, _, problem, _ = rrot_setup
        assert problem.register_weights
        assert problem.users_map
        assert problem.register_weights is problem.register_weights

    def test_update_timing_patches_bound_and_lp(self, rrot_setup):
        graph, matrix, index_of, problem, scheduler = rrot_setup
        budget = scheduler.timing_budget_ps
        lp = problem.lp()
        # Pick a pair that carries a timing constraint spanning >= 2 cycles
        # and lower its delay so the constraint relaxes but survives.
        pair = next((u, v) for (u, v), row in
                    [((c.u, c.v), i) for i, c in enumerate(problem.system)
                     if c.kind == "timing" and c.bound <= -2][:1])
        row = problem.system.timing_row(*pair)
        old_bound = problem.system.timing_bound(*pair)
        new_delay = budget * 1.5  # one stage boundary needed
        matrix[index_of[pair[0]], index_of[pair[1]]] = new_delay
        assert problem.update_timing({pair}, matrix, index_of)
        assert problem.system.timing_bound(*pair) == -1 != old_bound
        assert problem.system.timing_row(*pair) == row
        assert lp.b_ub[row] == -1.0
        assert problem.bound_patches == 1

    def test_update_timing_detects_vanishing_constraint(self, rrot_setup):
        graph, matrix, index_of, problem, scheduler = rrot_setup
        pair = next((c.u, c.v) for c in problem.system if c.kind == "timing")
        matrix[index_of[pair[0]], index_of[pair[1]]] = \
            scheduler.timing_budget_ps / 2
        assert not problem.update_timing({pair}, matrix, index_of)
        # Nothing was modified: the stale constraint is still there.
        assert problem.system.timing_bound(*pair) is not None
        assert problem.bound_patches == 0

    def test_update_timing_ignores_diagonal(self, rrot_setup):
        graph, matrix, index_of, problem, _ = rrot_setup
        node = next(iter(index_of))
        assert problem.update_timing({(node, node)}, matrix, index_of)

    def test_rebuild_counts_and_invalidates(self, rrot_setup):
        graph, matrix, index_of, problem, _ = rrot_setup
        lp_before = problem.lp()
        problem.rebuild(matrix, index_of)
        assert problem.rebuilds == 1
        assert problem.lp() is not lp_before


class TestSolverStrategies:
    def test_create_solver_registry(self):
        assert create_solver("full").name == "full"
        assert create_solver("incremental").name == "incremental"
        with pytest.raises(ValueError):
            create_solver("magic")

    def test_full_and_incremental_agree_from_scratch(self, rrot_setup):
        graph, matrix, index_of, problem, scheduler = rrot_setup
        reference = solve_lp(problem.system, problem.register_weights,
                             problem.users_map, problem.latency_weight)
        full = FullSolver().solve(problem, matrix, index_of)
        incremental = IncrementalSolver().solve(problem, matrix, index_of,
                                                dirty_pairs=set())
        assert full == reference
        assert incremental == reference

    def test_incremental_agrees_after_delta(self, rrot_setup):
        graph, matrix, index_of, problem, scheduler = rrot_setup
        incremental = IncrementalSolver()
        incremental.solve(problem, matrix, index_of, dirty_pairs=set())

        # Relax every timing constraint's delay by 10% (all survive).
        dirty = set()
        for constraint in problem.system.constraints("timing"):
            u, v = constraint.u, constraint.v
            entry = matrix[index_of[u], index_of[v]]
            matrix[index_of[u], index_of[v]] = entry * 0.9
            dirty.add((u, v))
        patched = incremental.solve(problem, matrix, index_of,
                                    dirty_pairs=dirty)
        assert incremental.incremental_solves >= 1

        fresh = ScheduleProblem(graph, matrix, index_of,
                                scheduler.timing_budget_ps)
        reference = solve_lp(fresh.system, fresh.register_weights,
                             fresh.users_map, fresh.latency_weight)
        assert patched == reference

    def test_incremental_falls_back_on_structure_change(self, rrot_setup):
        graph, matrix, index_of, problem, scheduler = rrot_setup
        incremental = IncrementalSolver()
        incremental.solve(problem, matrix, index_of, dirty_pairs=set())

        constraint = problem.system.constraints("timing")[0]
        matrix[index_of[constraint.u], index_of[constraint.v]] = \
            scheduler.timing_budget_ps / 2
        schedule = incremental.solve(problem, matrix, index_of,
                                     dirty_pairs={(constraint.u, constraint.v)})
        assert incremental.fallback_solves >= 1
        assert problem.system.timing_bound(constraint.u, constraint.v) is None

        fresh = ScheduleProblem(graph, matrix, index_of,
                                scheduler.timing_budget_ps)
        reference = solve_lp(fresh.system, fresh.register_weights,
                             fresh.users_map, fresh.latency_weight)
        assert schedule == reference


class TestAssembledLp:
    def test_constraint_rows_lead_in_order(self):
        system = ConstraintSystem()
        system.pin(0, 0)
        system.add_dependency(0, 1)
        system.add_timing(0, 1, 2)
        lp = assemble_lp(system, {0: 8.0}, {0: [1]})
        assert lp.num_constraint_rows == len(system)
        assert list(lp.b_ub[:2]) == [0.0, -2.0]
        # One lifetime row follows the difference constraints.
        assert lp.a_ub.shape[0] == 3
        assert lp.b_ub[2] == 0.0

    def test_empty_system(self):
        system = ConstraintSystem()
        system.add_variable(5)
        lp = assemble_lp(system)
        assert lp.a_ub is None
        assert lp.b_ub.size == 0
