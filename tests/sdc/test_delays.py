"""Tests for the all-pairs critical-path delay matrix."""

import json
import os
import subprocess
import sys

import pytest

from repro.sdc.delays import (
    NOT_CONNECTED,
    critical_path_between,
    critical_path_matrix,
    node_delays,
    path_delay,
)
from repro.tech.delay_model import OperatorModel


@pytest.fixture
def diamond_matrix(diamond_graph):
    model = OperatorModel(pessimism=1.0)
    delays = node_delays(diamond_graph, model)
    matrix, index_of = critical_path_matrix(diamond_graph, delays)
    return diamond_graph, delays, matrix, index_of


class TestCriticalPathMatrix:
    def test_diagonal_holds_individual_delays(self, diamond_matrix):
        graph, delays, matrix, index_of = diamond_matrix
        for node in graph.nodes():
            index = index_of[node.node_id]
            assert matrix[index, index] == pytest.approx(delays[node.node_id])

    def test_unconnected_pairs_marked(self, diamond_matrix):
        graph, _, matrix, index_of = diamond_matrix
        params = [p.node_id for p in graph.parameters()]
        assert matrix[index_of[params[0]], index_of[params[1]]] == NOT_CONNECTED

    def test_matrix_matches_explicit_path_search(self, diamond_matrix):
        graph, delays, matrix, index_of = diamond_matrix
        names = {n.name: n.node_id for n in graph.nodes()}
        expected, path = critical_path_between(graph, delays, names["base"],
                                               names["join"])
        assert matrix[index_of[names["base"]], index_of[names["join"]]] == \
            pytest.approx(expected)
        assert path[0] == names["base"] and path[-1] == names["join"]

    def test_takes_worst_of_parallel_branches(self, diamond_matrix):
        graph, delays, matrix, index_of = diamond_matrix
        names = {n.name: n.node_id for n in graph.nodes()}
        through_right = (delays[names["base"]] + delays[names["right"]]
                         + delays[names["join"]])
        assert matrix[index_of[names["base"]], index_of[names["join"]]] == \
            pytest.approx(through_right)

    def test_downstream_only(self, diamond_matrix):
        graph, _, matrix, index_of = diamond_matrix
        names = {n.name: n.node_id for n in graph.nodes()}
        assert matrix[index_of[names["join"]], index_of[names["base"]]] == NOT_CONNECTED

    def test_unreachable_pair_in_path_search(self, diamond_graph):
        delays = node_delays(diamond_graph, OperatorModel())
        params = [p.node_id for p in diamond_graph.parameters()]
        delay, path = critical_path_between(diamond_graph, delays, params[0], params[1])
        assert delay == NOT_CONNECTED and path == []


class TestPathDelayHelper:
    def test_sums_node_delays(self, diamond_graph):
        delays = node_delays(diamond_graph, OperatorModel())
        names = {n.name: n.node_id for n in diamond_graph.nodes()}
        path = [names["base"], names["right"], names["join"]]
        assert path_delay(diamond_graph, delays, path) == pytest.approx(
            sum(delays[nid] for nid in path))

    def test_shares_kernel_implementation(self):
        from repro.kernel import path_delay as kernel_path_delay

        delays = {0: 1.0, 1: 2.0}
        assert path_delay(None, delays, [0, 1]) == \
            kernel_path_delay(delays, [0, 1])


_TIE_SCRIPT = r"""
import json, sys
from repro.ir.builder import GraphBuilder
from repro.sdc.delays import critical_path_between

# Eight parallel equal-delay two-hop branches between 'base' and the sink:
# under the historical set-iteration relaxation, which branch the
# reconstructed path took could follow hash order.
builder = GraphBuilder("ties")
a = builder.param("a", 8)
base = builder.add(a, a, name="base")
branches = [builder.add(base, a, name=f"branch{i}") for i in range(8)]
mid = [builder.add(b, a, name=f"mid{i}") for i, b in enumerate(branches)]
sink = mid[0]
for other in mid[1:]:
    sink = builder.and_(sink, other)
builder.output(sink)
graph = builder.graph
delays = {node.node_id: 1.0 for node in graph.nodes()}
delay, path = critical_path_between(graph, delays, base.node_id,
                                    sink.node_id)
json.dump({"delay": delay, "path": path}, sys.stdout, sort_keys=True)
"""


def _run_under_hash_seed(script: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")
    completed = subprocess.run([sys.executable, "-c", script], env=env,
                               capture_output=True, text=True, timeout=120)
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


@pytest.mark.parametrize("other_seed", ["1", "31337", "random"])
def test_critical_path_between_is_hashseed_independent(other_seed):
    """Equal-delay path reconstruction must not depend on PYTHONHASHSEED."""
    baseline = _run_under_hash_seed(_TIE_SCRIPT, "0")
    payload = json.loads(baseline)
    assert len(payload["path"]) >= 3  # sanity: a real multi-hop path
    assert _run_under_hash_seed(_TIE_SCRIPT, other_seed) == baseline
