"""Tests for the all-pairs critical-path delay matrix."""

import pytest

from repro.sdc.delays import (
    NOT_CONNECTED,
    critical_path_between,
    critical_path_matrix,
    node_delays,
)
from repro.tech.delay_model import OperatorModel


@pytest.fixture
def diamond_matrix(diamond_graph):
    model = OperatorModel(pessimism=1.0)
    delays = node_delays(diamond_graph, model)
    matrix, index_of = critical_path_matrix(diamond_graph, delays)
    return diamond_graph, delays, matrix, index_of


class TestCriticalPathMatrix:
    def test_diagonal_holds_individual_delays(self, diamond_matrix):
        graph, delays, matrix, index_of = diamond_matrix
        for node in graph.nodes():
            index = index_of[node.node_id]
            assert matrix[index, index] == pytest.approx(delays[node.node_id])

    def test_unconnected_pairs_marked(self, diamond_matrix):
        graph, _, matrix, index_of = diamond_matrix
        params = [p.node_id for p in graph.parameters()]
        assert matrix[index_of[params[0]], index_of[params[1]]] == NOT_CONNECTED

    def test_matrix_matches_explicit_path_search(self, diamond_matrix):
        graph, delays, matrix, index_of = diamond_matrix
        names = {n.name: n.node_id for n in graph.nodes()}
        expected, path = critical_path_between(graph, delays, names["base"],
                                               names["join"])
        assert matrix[index_of[names["base"]], index_of[names["join"]]] == \
            pytest.approx(expected)
        assert path[0] == names["base"] and path[-1] == names["join"]

    def test_takes_worst_of_parallel_branches(self, diamond_matrix):
        graph, delays, matrix, index_of = diamond_matrix
        names = {n.name: n.node_id for n in graph.nodes()}
        through_right = (delays[names["base"]] + delays[names["right"]]
                         + delays[names["join"]])
        assert matrix[index_of[names["base"]], index_of[names["join"]]] == \
            pytest.approx(through_right)

    def test_downstream_only(self, diamond_matrix):
        graph, _, matrix, index_of = diamond_matrix
        names = {n.name: n.node_id for n in graph.nodes()}
        assert matrix[index_of[names["join"]], index_of[names["base"]]] == NOT_CONNECTED

    def test_unreachable_pair_in_path_search(self, diamond_graph):
        delays = node_delays(diamond_graph, OperatorModel())
        params = [p.node_id for p in diamond_graph.parameters()]
        delay, path = critical_path_between(diamond_graph, delays, params[0], params[1])
        assert delay == NOT_CONNECTED and path == []
