"""II scheduling and loop-design generation must ignore hash randomisation.

The minimum-II search bisects over LP solves and the ``loop:`` generator
draws every choice from ``random.Random(seed)``; neither may let Python
set/dict iteration order (a function of ``PYTHONHASHSEED``) leak into the
emitted schedule, II, or generated structure.  These tests run both in
subprocesses under different hash seeds and assert byte-identical output.
"""

import json
import os
import subprocess
import sys

import pytest

_II_SCRIPT = r"""
import json, sys
from repro.designs.generator import case_from_name
from repro.sdc.scheduler import SdcScheduler
from repro.ir.textual import graph_to_text

payloads = []
for name in ("loop:seed=1,depth=4,width=3,bits=16,inputs=2,phis=2,dist=2,clock=2500",
             "loop:seed=9,depth=3,width=2,bits=8,inputs=1,phis=1,dist=1,clock=2500",
             "examples/loop_accum.ir"):
    case = case_from_name(name)
    graph = case.build()
    result = SdcScheduler(clock_period_ps=case.clock_period_ps).schedule(graph)
    payloads.append({
        "design": name,
        "text": graph_to_text(graph),
        "ii": result.schedule.ii,
        "stages": {str(k): v for k, v in sorted(result.schedule.stages.items())},
    })
json.dump(payloads, sys.stdout, sort_keys=True)
"""


def _run_under_seed(script: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")
    repo = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
    completed = subprocess.run([sys.executable, "-c", script], env=env,
                               cwd=repo, capture_output=True, text=True,
                               timeout=300)
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


@pytest.mark.parametrize("other_seed", ["1", "31337", "random"])
def test_ii_schedules_are_hashseed_independent(other_seed):
    baseline = _run_under_seed(_II_SCRIPT, "0")
    payloads = json.loads(baseline)
    assert payloads[2]["ii"] == 2  # sanity: loop_accum really pipelines
    assert _run_under_seed(_II_SCRIPT, other_seed) == baseline
