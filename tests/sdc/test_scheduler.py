"""Tests for the baseline SDC scheduler."""

import math

import pytest

from repro.sdc.scheduler import SdcScheduler, register_weights, users_map
from repro.synth.estimator import CharacterizedOperatorModel
from repro.tech.delay_model import OperatorModel


@pytest.fixture(scope="module")
def model():
    return OperatorModel(pessimism=1.0)


class TestScheduleValidity:
    def test_dependencies_respected(self, adder_chain_graph, model):
        result = SdcScheduler(model, clock_period_ps=1600.0).schedule(adder_chain_graph)
        schedule = result.schedule
        for node in adder_chain_graph.nodes():
            for operand in node.operands:
                assert schedule.stage_of(operand) <= schedule.stage_of(node.node_id)

    def test_timing_constraints_respected(self, adder_chain_graph, model):
        scheduler = SdcScheduler(model, clock_period_ps=1600.0)
        result = scheduler.schedule(adder_chain_graph)
        matrix, index_of = result.delay_matrix, result.index_of
        budget = scheduler.timing_budget_ps
        for u in adder_chain_graph.node_ids():
            for v in adder_chain_graph.node_ids():
                if u == v:
                    continue
                delay = matrix[index_of[u], index_of[v]]
                if delay > budget:
                    required = math.ceil(delay / budget) - 1
                    assert (result.schedule.stage_of(v)
                            - result.schedule.stage_of(u)) >= required

    def test_sources_pinned_to_stage_zero(self, adder_chain_graph, model):
        result = SdcScheduler(model, clock_period_ps=1600.0).schedule(adder_chain_graph)
        for node in adder_chain_graph.nodes():
            if node.is_source:
                assert result.schedule.stage_of(node.node_id) == 0

    def test_single_stage_when_clock_is_huge(self, adder_chain_graph, model):
        result = SdcScheduler(model, clock_period_ps=1e6).schedule(adder_chain_graph)
        assert result.schedule.num_stages == 1

    def test_more_stages_with_faster_clock(self, adder_chain_graph, model):
        slow = SdcScheduler(model, clock_period_ps=4000.0).schedule(adder_chain_graph)
        fast = SdcScheduler(model, clock_period_ps=1600.0).schedule(adder_chain_graph)
        assert fast.schedule.num_stages >= slow.schedule.num_stages

    def test_clock_too_fast_rejected(self, adder_chain_graph, model):
        with pytest.raises(ValueError, match="clock period"):
            SdcScheduler(model, clock_period_ps=300.0).schedule(adder_chain_graph)

    def test_register_overhead_must_fit(self, model):
        with pytest.raises(ValueError):
            SdcScheduler(model, clock_period_ps=100.0, register_overhead_ps=150.0)


class TestObjective:
    def test_register_weights_skip_constants(self, adder_chain_graph):
        builder_weights = register_weights(adder_chain_graph)
        for node in adder_chain_graph.nodes():
            if node.is_source and node.kind.value == "constant":
                assert node.node_id not in builder_weights

    def test_users_map_complete(self, adder_chain_graph):
        users = users_map(adder_chain_graph)
        assert set(users) == set(adder_chain_graph.node_ids())

    def test_characterized_model_schedules_fewer_or_equal_stages(
            self, adder_chain_graph):
        pessimistic = OperatorModel(pessimism=1.5)
        accurate = CharacterizedOperatorModel(pessimism=1.0)
        many = SdcScheduler(pessimistic, clock_period_ps=2500.0).schedule(
            adder_chain_graph)
        few = SdcScheduler(accurate, clock_period_ps=2500.0).schedule(
            adder_chain_graph)
        assert few.schedule.num_stages <= many.schedule.num_stages


class TestScheduleObject:
    def test_stage_node_map_partition(self, adder_chain_graph, model):
        schedule = SdcScheduler(model, clock_period_ps=1600.0).schedule(
            adder_chain_graph).schedule
        mapping = schedule.stage_node_map()
        all_nodes = sorted(nid for nodes in mapping.values() for nid in nodes)
        assert all_nodes == adder_chain_graph.node_ids()

    def test_lifetime(self, adder_chain_graph, model):
        schedule = SdcScheduler(model, clock_period_ps=1600.0).schedule(
            adder_chain_graph).schedule
        x = adder_chain_graph.parameters()[0].node_id
        # x feeds both the first adder (stage 0) and the multiplier (last stage).
        assert schedule.lifetime(x) == schedule.num_stages - 1

    def test_runtime_recorded(self, adder_chain_graph, model):
        result = SdcScheduler(model, clock_period_ps=1600.0).schedule(adder_chain_graph)
        assert result.runtime_s > 0
        assert result.num_constraints > 0
