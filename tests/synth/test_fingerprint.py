"""Tests for structural subgraph fingerprints."""

from repro.ir.builder import GraphBuilder
from repro.synth.fingerprint import canonical_subgraph, subgraph_fingerprint


def _adder_pair(name: str, width: int = 16):
    builder = GraphBuilder(name)
    x = builder.param("x", width)
    y = builder.param("y", width)
    z = builder.param("z", width)
    s1 = builder.add(x, y, name="s1")
    s2 = builder.add(s1, z, name="s2")
    builder.output(s2, name="out")
    return builder.graph, (s1.node_id, s2.node_id)


def test_same_structure_same_fingerprint_across_graphs():
    graph_a, nodes_a = _adder_pair("first")
    graph_b, nodes_b = _adder_pair("second")
    assert subgraph_fingerprint(graph_a, nodes_a) == \
        subgraph_fingerprint(graph_b, nodes_b)


def test_same_name_different_structure_distinct():
    """The seed cache keyed on graph.name; structurally distinct graphs that
    share a name must not collide."""
    graph_a, nodes_a = _adder_pair("design")
    graph_b, nodes_b = _adder_pair("design", width=32)
    assert subgraph_fingerprint(graph_a, nodes_a) != \
        subgraph_fingerprint(graph_b, nodes_b)


def test_node_id_order_does_not_matter():
    graph, nodes = _adder_pair("design")
    assert subgraph_fingerprint(graph, nodes) == \
        subgraph_fingerprint(graph, reversed(nodes))
    assert subgraph_fingerprint(graph, list(nodes) + [nodes[0]]) == \
        subgraph_fingerprint(graph, nodes)


def test_different_subsets_distinct(adder_chain_graph):
    names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
    one = subgraph_fingerprint(adder_chain_graph, [names["s1"]])
    two = subgraph_fingerprint(adder_chain_graph, [names["s1"], names["s2"]])
    assert one != two


def test_external_constant_value_enters_the_key():
    def shifted(amount):
        builder = GraphBuilder("shift")
        x = builder.param("x", 16)
        k = builder.constant(amount, 4)
        node = builder.shl(x, k, name="shifted")
        builder.output(node)
        return builder.graph, (node.node_id,)

    graph_a, nodes_a = shifted(1)
    graph_b, nodes_b = shifted(3)
    assert subgraph_fingerprint(graph_a, nodes_a) != \
        subgraph_fingerprint(graph_b, nodes_b)


def test_output_marking_enters_the_key(diamond_graph):
    """Whether a node's result leaves the subgraph changes the lowered
    netlist's outputs, so it must change the key."""
    names = {n.name: n.node_id for n in diamond_graph.nodes()}
    with_consumer = canonical_subgraph(diamond_graph,
                                       [names["base"], names["left"]])
    # 'base' feeds 'right' outside the set -> it is an output here.
    entry = next(e for e in with_consumer if e[4])
    assert entry is not None


def test_canonical_form_is_hashable(adder_chain_graph):
    form = canonical_subgraph(adder_chain_graph,
                              adder_chain_graph.node_ids())
    assert isinstance(hash(form), int)
