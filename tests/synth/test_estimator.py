"""Tests for the characterised operator model and the naive estimator."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.ops import OpKind
from repro.synth.estimator import CharacterizedOperatorModel, NaiveDelayEstimator
from repro.synth.flow import SynthesisFlow
from repro.tech.delay_model import OperatorModel


@pytest.fixture(scope="module")
def characterized():
    return CharacterizedOperatorModel(pessimism=1.0)


class TestCharacterizedModel:
    def test_matches_single_op_synthesis(self, characterized, library):
        builder = GraphBuilder("char_check")
        x = builder.param("x", 16)
        y = builder.param("y", 16)
        total = builder.add(x, y)
        builder.output(total)
        flow = SynthesisFlow(library)
        measured = flow.evaluate_subgraph(builder.graph, [total.node_id]).delay_ps
        assert characterized.node_delay(total) == pytest.approx(measured)

    def test_free_ops_are_zero(self, characterized):
        builder = GraphBuilder()
        x = builder.param("x", 16)
        sliced = builder.bit_slice(x, 0, 8)
        assert characterized.node_delay(sliced) == 0.0

    def test_caching_returns_same_value(self, characterized):
        builder = GraphBuilder()
        x = builder.param("x", 16)
        y = builder.param("y", 16)
        first = builder.add(x, y)
        second = builder.add(y, x)
        assert characterized.node_delay(first) == characterized.node_delay(second)

    def test_pessimism_scales(self):
        base = CharacterizedOperatorModel(pessimism=1.0)
        padded = CharacterizedOperatorModel(pessimism=1.3)
        builder = GraphBuilder()
        x = builder.param("x", 8)
        y = builder.param("y", 8)
        total = builder.add(x, y)
        assert padded.node_delay(total) == pytest.approx(1.3 * base.node_delay(total))

    def test_invalid_pessimism_rejected(self):
        with pytest.raises(ValueError):
            CharacterizedOperatorModel(pessimism=0.5)

    def test_preload_characterises_graph(self, adder_chain_graph):
        model = CharacterizedOperatorModel(pessimism=1.0)
        model.preload(adder_chain_graph)
        for node in adder_chain_graph.nodes():
            assert model.node_delay(node) >= 0.0


class TestNaiveEstimator:
    def test_path_delay_is_sum(self, adder_chain_graph):
        estimator = NaiveDelayEstimator(OperatorModel(pessimism=1.0))
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        path = [names["s1"], names["s2"], names["s3"]]
        total = estimator.path_delay(adder_chain_graph, path)
        individual = sum(estimator.node_delay(adder_chain_graph.node(nid))
                         for nid in path)
        assert total == pytest.approx(individual)

    def test_critical_path_delay(self, diamond_graph):
        estimator = NaiveDelayEstimator(OperatorModel(pessimism=1.0))
        names = {n.name: n.node_id for n in diamond_graph.nodes()}
        delay = estimator.critical_path_delay(diamond_graph, names["base"],
                                              names["join"])
        # The add branch (right) is slower than the xor branch (left).
        expected = sum(estimator.node_delay(diamond_graph.node(names[n]))
                       for n in ("base", "right", "join"))
        assert delay == pytest.approx(expected)

    def test_unreachable_pair_returns_negative(self, diamond_graph):
        estimator = NaiveDelayEstimator()
        params = [p.node_id for p in diamond_graph.parameters()]
        assert estimator.critical_path_delay(diamond_graph, params[0], params[1]) == -1.0

    def test_naive_sum_exceeds_synthesised_chain(self, adder_chain_graph, library):
        """The over-estimation gap that motivates the whole paper (Fig. 1)."""
        estimator = NaiveDelayEstimator(CharacterizedOperatorModel(library))
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        path = [names["s1"], names["s2"], names["s3"]]
        estimated = estimator.path_delay(adder_chain_graph, path)
        measured = SynthesisFlow(library).evaluate_subgraph(
            adder_chain_graph, path).delay_ps
        assert estimated > measured
