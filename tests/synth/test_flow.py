"""Tests for the downstream synthesis flow."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.synth.flow import SynthesisFlow


class TestEvaluateSubgraph:
    def test_report_fields(self, synthesis_flow, adder_chain_graph):
        node_ids = [n.node_id for n in adder_chain_graph.nodes()
                    if n.name in ("s1", "s2")]
        report = synthesis_flow.evaluate_subgraph(adder_chain_graph, node_ids)
        assert report.delay_ps > 0
        assert report.num_gates > 0
        assert report.num_gates <= report.num_gates_unoptimized
        assert report.area_um2 > 0
        assert report.node_ids == tuple(sorted(node_ids))
        assert 0.0 <= report.gate_reduction < 1.0

    def test_chained_subgraph_subadditive(self, synthesis_flow, adder_chain_graph):
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        single = synthesis_flow.evaluate_subgraph(adder_chain_graph, [names["s1"]])
        double = synthesis_flow.evaluate_subgraph(adder_chain_graph,
                                                  [names["s1"], names["s2"]])
        assert double.delay_ps < 2 * single.delay_ps
        assert double.delay_ps >= single.delay_ps

    def test_evaluate_graph_matches_full_subgraph(self, synthesis_flow,
                                                  diamond_graph):
        whole = synthesis_flow.evaluate_graph(diamond_graph)
        explicit = synthesis_flow.evaluate_subgraph(diamond_graph,
                                                    diamond_graph.node_ids())
        assert whole.delay_ps == pytest.approx(explicit.delay_ps)

    def test_unoptimized_flow_is_slower_or_equal(self, adder_chain_graph, library):
        optimized = SynthesisFlow(library, optimize=True)
        raw = SynthesisFlow(library, optimize=False)
        node_ids = [n.node_id for n in adder_chain_graph.nodes()
                    if n.name in ("s1", "s2", "s3")]
        assert optimized.evaluate_subgraph(adder_chain_graph, node_ids).delay_ps <= \
            raw.evaluate_subgraph(adder_chain_graph, node_ids).delay_ps

    def test_aig_depth_recorded_when_requested(self, adder_chain_graph, library):
        flow = SynthesisFlow(library, compute_aig=True)
        report = flow.evaluate_graph(adder_chain_graph)
        assert report.aig_depth is not None
        assert report.aig_depth > 0

    def test_stage_delay_skips_sources(self, synthesis_flow, adder_chain_graph):
        sources = [n.node_id for n in adder_chain_graph.nodes() if n.is_source]
        assert synthesis_flow.stage_delay(adder_chain_graph, sources) == 0.0

    def test_source_only_subgraph_is_free(self, synthesis_flow, adder_chain_graph):
        param = adder_chain_graph.parameters()[0]
        report = synthesis_flow.evaluate_subgraph(adder_chain_graph,
                                                  [param.node_id])
        assert report.delay_ps == 0.0
