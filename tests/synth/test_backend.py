"""Tests for the pluggable flow-backend layer."""

import pytest

from repro.synth.backend import (
    BACKENDS,
    EstimatorBackend,
    FlowBackend,
    LocalSynthesisBackend,
    create_backend,
)
from repro.synth.flow import SynthesisFlow
from repro.synth.report import SynthesisReport


def _stage_sets(graph):
    names = {n.name: n.node_id for n in graph.nodes()}
    return [
        [names["s1"]],
        [names["s1"], names["s2"]],
        [names["s2"], names["s3"]],
        [names["s1"], names["s2"], names["s3"], names["product"]],
    ]


def test_backends_satisfy_protocol(library):
    assert isinstance(LocalSynthesisBackend(library), FlowBackend)
    assert isinstance(EstimatorBackend(library), FlowBackend)
    assert isinstance(SynthesisFlow(library), FlowBackend)


def test_create_backend_registry(library):
    assert isinstance(create_backend("local", library), LocalSynthesisBackend)
    assert isinstance(create_backend("estimator", library), EstimatorBackend)
    assert set(BACKENDS) == {"local", "estimator"}
    with pytest.raises(ValueError, match="unknown flow backend"):
        create_backend("yosys")


def test_create_backend_estimator_ignores_synthesis_knobs(library):
    backend = create_backend("estimator", library, optimize=True, jobs=8)
    assert isinstance(backend, EstimatorBackend)


def test_serial_batch_matches_individual_evaluations(adder_chain_graph, library):
    flow = SynthesisFlow(library)
    sets = _stage_sets(adder_chain_graph)
    batch = flow.evaluate_batch(adder_chain_graph, sets)
    individual = [flow.evaluate_subgraph(adder_chain_graph, s) for s in sets]
    assert [r.delay_ps for r in batch] == [r.delay_ps for r in individual]
    assert [r.num_gates for r in batch] == [r.num_gates for r in individual]


def test_parallel_batch_identical_to_serial(adder_chain_graph, library):
    sets = _stage_sets(adder_chain_graph)
    serial = SynthesisFlow(library).evaluate_batch(adder_chain_graph, sets)
    with LocalSynthesisBackend(library, jobs=3) as backend:
        parallel = backend.evaluate_batch(adder_chain_graph, sets)
    assert parallel == serial  # frozen dataclasses: field-wise equality


def test_parallel_batch_preserves_order_and_names(adder_chain_graph, library):
    sets = _stage_sets(adder_chain_graph)
    names = [f"block{i}" for i in range(len(sets))]
    with LocalSynthesisBackend(library, jobs=2) as backend:
        reports = backend.evaluate_batch(adder_chain_graph, sets, names)
    assert [r.name for r in reports] == names
    assert all(isinstance(r, SynthesisReport) for r in reports)


def test_estimator_backend_is_cheap_but_consistent(adder_chain_graph, library):
    estimator = EstimatorBackend(library)
    sets = _stage_sets(adder_chain_graph)
    reports = estimator.evaluate_batch(adder_chain_graph, sets)
    # Longer chains estimate no faster than their prefixes.
    assert reports[1].delay_ps >= reports[0].delay_ps
    assert reports[3].delay_ps >= reports[1].delay_ps
    for report in reports:
        assert report.delay_ps > 0
        assert report.num_gates == report.num_gates_unoptimized


def test_estimator_backend_drives_the_analyzer(adder_chain_graph, library):
    """The estimator slots into the same consumers as the local backend."""
    from repro.sdc.pipeline import PipelineAnalyzer
    from repro.sdc.scheduler import SdcScheduler
    from repro.tech.delay_model import OperatorModel

    schedule = SdcScheduler(OperatorModel(library),
                            clock_period_ps=2500.0).schedule(
        adder_chain_graph).schedule
    analyzer = PipelineAnalyzer(flow=EstimatorBackend(library),
                                library=library)
    report = analyzer.report(schedule)
    assert report.num_stages == schedule.num_stages
    assert all(d >= 0 for d in report.stage_delays_ps)


def test_backend_close_is_idempotent(library):
    backend = LocalSynthesisBackend(library, jobs=2)
    backend.close()
    backend.close()
