"""Tests for the subgraph evaluation cache."""

from repro.synth.cache import EvaluationCache
from repro.synth.flow import SynthesisFlow


def test_cache_hits_and_misses(adder_chain_graph, library):
    cache = EvaluationCache(SynthesisFlow(library))
    names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
    first = cache.evaluate(adder_chain_graph, [names["s1"], names["s2"]])
    second = cache.evaluate(adder_chain_graph, [names["s2"], names["s1"]])
    assert first is second
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5
    assert len(cache) == 1


def test_different_subsets_are_distinct(adder_chain_graph, library):
    cache = EvaluationCache(SynthesisFlow(library))
    names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
    cache.evaluate(adder_chain_graph, [names["s1"]])
    cache.evaluate(adder_chain_graph, [names["s1"], names["s2"]])
    assert cache.stats.misses == 2
    assert len(cache) == 2


def test_clear_resets_everything(adder_chain_graph, library):
    cache = EvaluationCache(SynthesisFlow(library))
    cache.evaluate(adder_chain_graph, [adder_chain_graph.node_ids()[4]])
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.total == 0
