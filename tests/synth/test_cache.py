"""Tests for the subgraph evaluation cache."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.synth.backend import LocalSynthesisBackend
from repro.synth.cache import EvaluationCache
from repro.synth.flow import SynthesisFlow


def test_cache_hits_and_misses(adder_chain_graph, library):
    cache = EvaluationCache(SynthesisFlow(library))
    names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
    first = cache.evaluate(adder_chain_graph, [names["s1"], names["s2"]])
    second = cache.evaluate(adder_chain_graph, [names["s2"], names["s1"]])
    assert first is second
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5
    assert len(cache) == 1


def test_different_subsets_are_distinct(adder_chain_graph, library):
    cache = EvaluationCache(SynthesisFlow(library))
    names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
    cache.evaluate(adder_chain_graph, [names["s1"]])
    cache.evaluate(adder_chain_graph, [names["s1"], names["s2"]])
    assert cache.stats.misses == 2
    assert len(cache) == 2


def test_clear_resets_everything(adder_chain_graph, library):
    cache = EvaluationCache(SynthesisFlow(library))
    cache.evaluate(adder_chain_graph, [adder_chain_graph.node_ids()[4]])
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.total == 0


def _sum_graph(name: str, width: int = 16):
    builder = GraphBuilder(name)
    x = builder.param("x", width)
    y = builder.param("y", width)
    total = builder.add(x, y, name="total")
    builder.output(total, name="out")
    return builder.graph, (total.node_id,)


def test_same_name_different_structure_do_not_collide(library):
    """The seed cache keyed on (graph.name, node_ids) and conflated distinct
    graphs sharing a name; structural keys must not."""
    graph_a, nodes_a = _sum_graph("design", width=8)
    graph_b, nodes_b = _sum_graph("design", width=32)
    cache = EvaluationCache(SynthesisFlow(library))
    report_a = cache.evaluate(graph_a, nodes_a)
    report_b = cache.evaluate(graph_b, nodes_b)
    assert cache.stats.misses == 2
    assert report_a.delay_ps != report_b.delay_ps


def test_structurally_identical_blocks_hit_across_graphs(library):
    graph_a, nodes_a = _sum_graph("first")
    graph_b, nodes_b = _sum_graph("second")
    cache = EvaluationCache(SynthesisFlow(library))
    first = cache.evaluate(graph_a, nodes_a)
    second = cache.evaluate(graph_b, nodes_b)
    assert first is second
    assert cache.stats.hits == 1


def test_batch_accounting_matches_serial_semantics(adder_chain_graph, library):
    names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
    cache = EvaluationCache(SynthesisFlow(library))
    sets = [
        [names["s1"]],
        [names["s1"], names["s2"]],
        [names["s2"], names["s1"]],  # duplicate of the previous set
        [names["s1"]],               # duplicate of the first set
    ]
    reports = cache.evaluate_batch(adder_chain_graph, sets)
    assert cache.stats.misses == 2
    assert cache.stats.synth_runs == 2  # no disk layer: every miss synthesises
    assert cache.stats.hits == 2
    assert reports[1] is reports[2]
    assert reports[0] is reports[3]
    assert len(cache) == 2


def test_batch_through_parallel_backend_keeps_accounting(adder_chain_graph,
                                                         library):
    names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
    sets = [[names["s1"]], [names["s2"]], [names["s3"]],
            [names["s1"], names["s2"]]]
    serial_cache = EvaluationCache(SynthesisFlow(library))
    serial = serial_cache.evaluate_batch(adder_chain_graph, sets)
    with LocalSynthesisBackend(library, jobs=2) as backend:
        parallel_cache = EvaluationCache(backend)
        parallel = parallel_cache.evaluate_batch(adder_chain_graph, sets)
        assert parallel == serial
        assert parallel_cache.stats.misses == serial_cache.stats.misses
        assert parallel_cache.stats.hits == serial_cache.stats.hits


def test_disk_layer_warms_future_caches(adder_chain_graph, library, tmp_path):
    path = tmp_path / "cache" / "evals.jsonl"
    names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
    cold = EvaluationCache(SynthesisFlow(library), disk_path=path)
    report = cold.evaluate(adder_chain_graph, [names["s1"], names["s2"]])
    assert cold.stats.misses == 1
    assert path.exists()

    warm = EvaluationCache(SynthesisFlow(library), disk_path=path)
    assert warm.stats.disk_loaded == 1
    reloaded = warm.evaluate(adder_chain_graph, [names["s1"], names["s2"]])
    # A disk answer is a memory miss but NOT a synthesis run.
    assert warm.stats.misses == 1
    assert warm.stats.disk_hits == 1
    assert warm.stats.synth_runs == 0
    assert reloaded.delay_ps == report.delay_ps
    assert reloaded.num_gates == report.num_gates
    # The promoted entry answers repeats from memory.
    warm.evaluate(adder_chain_graph, [names["s1"], names["s2"]])
    assert warm.stats.hits == 1
    assert warm.stats.synth_runs == 0


def test_disk_layer_is_backend_configuration_specific(adder_chain_graph,
                                                      library, tmp_path):
    """Entries persisted by one backend configuration (e.g. the estimator)
    must not be served to a differently-configured backend."""
    from repro.synth.backend import EstimatorBackend

    path = tmp_path / "evals.jsonl"
    names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
    nodes = [names["s1"], names["s2"]]

    estimator_cache = EvaluationCache(EstimatorBackend(library), disk_path=path)
    estimated = estimator_cache.evaluate(adder_chain_graph, nodes)

    synth_cache = EvaluationCache(SynthesisFlow(library), disk_path=path)
    assert synth_cache.stats.disk_loaded == 0
    measured = synth_cache.evaluate(adder_chain_graph, nodes)
    assert synth_cache.stats.misses == 1
    assert synth_cache.stats.synth_runs == 1
    assert synth_cache.stats.disk_hits == 0
    assert measured.delay_ps != estimated.delay_ps

    # Same configuration -> the persisted entry is served again.
    rewarmed = EvaluationCache(SynthesisFlow(library), disk_path=path)
    assert rewarmed.stats.disk_loaded == 1


def test_empty_cache_is_not_discarded_by_the_analyzer(library):
    """An empty EvaluationCache is falsy (__len__); the analyzer must keep it."""
    from repro.sdc.pipeline import PipelineAnalyzer

    cache = EvaluationCache(SynthesisFlow(library))
    analyzer = PipelineAnalyzer(flow=cache, library=library)
    assert analyzer.flow is cache


def test_disk_layer_skips_corrupt_lines(adder_chain_graph, library, tmp_path):
    path = tmp_path / "evals.jsonl"
    path.write_text("not json\n{\"key\": \"missing fields\"}\n")
    cache = EvaluationCache(SynthesisFlow(library), disk_path=path)
    assert cache.stats.disk_loaded == 0
    names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
    assert cache.evaluate(adder_chain_graph, [names["s1"]]).delay_ps > 0


def test_disk_records_are_store_envelopes(adder_chain_graph, library,
                                          tmp_path):
    """The cache's disk layer writes unified synth-eval store records."""
    import json

    from repro.store import synth_eval_key
    from repro.synth.cache import backend_signature

    path = tmp_path / "evals.jsonl"
    flow = SynthesisFlow(library)
    cache = EvaluationCache(flow, disk_path=path)
    names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
    cache.evaluate(adder_chain_graph, [names["s1"]])
    record = json.loads(path.read_text().splitlines()[0])
    assert record["kind"] == "synth-eval"
    assert record["body"]["backend"] == backend_signature(flow)
    assert record["key"] == synth_eval_key(record["body"]["backend"],
                                           record["body"]["fingerprint"])
    assert "t" in record  # GC timestamp rides on the envelope


def test_foreign_signature_records_are_ignored_not_errors(adder_chain_graph,
                                                          library, tmp_path):
    """A store full of records under other/legacy signatures is simply a
    cold cache -- never a failed run."""
    import json

    path = tmp_path / "evals.jsonl"
    legacy_body = {"fingerprint": "fp", "backend": "SynthesisFlow,legacy",
                   "name": "old", "delay_ps": 1.0, "num_gates": 1,
                   "num_gates_unoptimized": 1, "area_um2": 0.1,
                   "aig_depth": None, "node_ids": []}
    path.write_text(json.dumps({"kind": "synth-eval", "key": "k1",
                                "schema": 1, "body": legacy_body}) + "\n")
    cache = EvaluationCache(SynthesisFlow(library), disk_path=path)
    assert cache.stats.disk_loaded == 0
    names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
    assert cache.evaluate(adder_chain_graph, [names["s1"]]).delay_ps > 0
    assert cache.stats.synth_runs == 1


def test_signature_tracks_library_characterisation(library):
    """Two libraries sharing a name but differing in one delay figure must
    not share disk records (the flaw the explicit signature() fixes)."""
    import copy

    from repro.synth.cache import backend_signature

    retimed = copy.deepcopy(library)
    cell = retimed.cells["xor2"]
    retimed.cells["xor2"] = type(cell)(name=cell.name,
                                       delay_ps=cell.delay_ps * 2,
                                       area_um2=cell.area_um2,
                                       num_inputs=cell.num_inputs)
    assert retimed.name == library.name
    assert backend_signature(SynthesisFlow(library)) != \
        backend_signature(SynthesisFlow(retimed))


def test_estimator_and_synthesis_signatures_differ(library):
    from repro.synth.backend import EstimatorBackend, LocalSynthesisBackend
    from repro.synth.cache import backend_signature

    synth = backend_signature(SynthesisFlow(library))
    assert backend_signature(EstimatorBackend(library)) != synth
    # The parallel backend is bit-identical to the serial flow and
    # legitimately shares its persisted records.
    with LocalSynthesisBackend(library) as parallel:
        assert backend_signature(parallel) == synth


def test_repeated_runs_with_compaction_stop_growing_the_file(
        adder_chain_graph, library, tmp_path):
    """Satellite acceptance: re-running the same evaluations re-appends the
    same (kind, key) identities, and compaction converges the file size."""
    from repro.store import ArtifactStore

    path = tmp_path / "evals.jsonl"
    names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
    sets = [[names["s1"]], [names["s1"], names["s2"]]]
    sizes = []
    for _ in range(3):
        cache = EvaluationCache(SynthesisFlow(library), disk_path=path)
        for node_ids in sets:
            cache.evaluate(adder_chain_graph, node_ids)
        ArtifactStore(path).open_for_append().compact()
        sizes.append(path.stat().st_size)
    assert sizes[0] == sizes[1] == sizes[2]
    warm = EvaluationCache(SynthesisFlow(library), disk_path=path)
    assert warm.stats.disk_loaded == 2


def test_cache_can_share_an_open_store(adder_chain_graph, library, tmp_path):
    """One artifact store can hold campaign records and evaluations."""
    from repro.store import ArtifactStore, StoreRecord

    store = ArtifactStore(tmp_path / "unified.jsonl").open_for_append()
    store.put(StoreRecord(kind="campaign-header", key="fp", schema=2,
                          body={"fingerprint": "fp"}))
    cache = EvaluationCache(SynthesisFlow(library), store=store)
    names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
    cache.evaluate(adder_chain_graph, [names["s1"]])
    reloaded = ArtifactStore.load(store.path)
    assert reloaded.kinds() == {"campaign-header": 1, "synth-eval": 1}
    with pytest.raises(ValueError, match="not both"):
        EvaluationCache(SynthesisFlow(library),
                        disk_path=tmp_path / "x.jsonl", store=store)
