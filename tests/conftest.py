"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.graph import DataflowGraph
from repro.synth.flow import SynthesisFlow
from repro.tech.delay_model import OperatorModel
from repro.tech.sky130 import sky130_library


@pytest.fixture(scope="session")
def library():
    """The synthetic SKY130 technology library (session-wide, immutable use)."""
    return sky130_library()


@pytest.fixture(scope="session")
def operator_model(library):
    """Closed-form operator delay model over the session library."""
    return OperatorModel(library)


@pytest.fixture(scope="session")
def synthesis_flow(library):
    """A default downstream synthesis flow."""
    return SynthesisFlow(library)


@pytest.fixture
def adder_chain_graph() -> DataflowGraph:
    """x + y + z + w followed by a multiply -- the canonical small test DFG."""
    builder = GraphBuilder("adder_chain")
    x = builder.param("x", 16)
    y = builder.param("y", 16)
    z = builder.param("z", 16)
    w = builder.param("w", 16)
    s1 = builder.add(x, y, name="s1")
    s2 = builder.add(s1, z, name="s2")
    s3 = builder.add(s2, w, name="s3")
    product = builder.mul(s3, x, name="product")
    builder.output(product, name="out")
    return builder.graph


@pytest.fixture
def diamond_graph() -> DataflowGraph:
    """A diamond-shaped DFG: one producer fanning out to two consumers that re-join."""
    builder = GraphBuilder("diamond")
    a = builder.param("a", 8)
    b = builder.param("b", 8)
    base = builder.add(a, b, name="base")
    left = builder.xor(base, a, name="left")
    right = builder.add(base, b, name="right")
    join = builder.sub(left, right, name="join")
    builder.output(join, name="out")
    return builder.graph
