"""Tests for the technology library."""

import pytest

from repro.tech.library import Cell, TechLibrary
from repro.tech.sky130 import sky130_library


class TestTechLibrary:
    def test_add_and_lookup(self):
        library = TechLibrary("test")
        library.add_cell(Cell("nand2", 20.0, 3.8, 2))
        assert library.delay("nand2") == 20.0
        assert library.area("nand2") == 3.8
        assert library.cell("nand2").num_inputs == 2

    def test_missing_cell_raises(self):
        library = TechLibrary("empty")
        with pytest.raises(KeyError, match="no cell"):
            library.cell("xor2")

    def test_replacing_cell(self):
        library = TechLibrary("test")
        library.add_cell(Cell("inv", 15.0, 2.5, 1))
        library.add_cell(Cell("inv", 12.0, 2.0, 1))
        assert library.delay("inv") == 12.0


class TestSky130:
    def test_has_all_gate_cells(self, library):
        for name in ("inv", "and2", "or2", "nand2", "nor2", "xor2", "xnor2",
                     "mux2", "maj3", "andn2", "buf", "tie0", "tie1"):
            assert name in library.cells

    def test_register_figures_positive(self, library):
        assert library.register_delay_ps > 0
        assert library.register_area_um2 > 0

    def test_xor_slower_than_nand(self, library):
        assert library.delay("xor2") > library.delay("nand2")

    def test_tie_cells_are_free(self, library):
        assert library.delay("tie0") == 0.0
        assert library.delay("tie1") == 0.0

    def test_fresh_library_instances_are_equal(self):
        assert sky130_library().cells.keys() == sky130_library().cells.keys()
