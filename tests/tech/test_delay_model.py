"""Tests for the closed-form operator delay model."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.ops import OpKind
from repro.tech.delay_model import OperatorModel


class TestDelayScaling:
    def test_adder_delay_grows_linearly_with_width(self, operator_model):
        d8 = operator_model.delay(OpKind.ADD, 8)
        d16 = operator_model.delay(OpKind.ADD, 16)
        d32 = operator_model.delay(OpKind.ADD, 32)
        assert d8 < d16 < d32
        # Ripple carry: delay is affine in width, so doubling the width gap
        # doubles the delay gap.
        assert (d32 - d16) == pytest.approx(2 * (d16 - d8), rel=0.2)

    def test_multiplier_slower_than_adder(self, operator_model):
        assert operator_model.delay(OpKind.MUL, 16) > operator_model.delay(OpKind.ADD, 16)

    def test_shift_delay_grows_logarithmically(self, operator_model):
        d8 = operator_model.delay(OpKind.SHL, 8)
        d64 = operator_model.delay(OpKind.SHL, 64)
        assert d64 == pytest.approx(2 * d8, rel=0.01)

    def test_free_ops_have_zero_delay(self, operator_model):
        for kind in (OpKind.CONCAT, OpKind.BIT_SLICE, OpKind.ZERO_EXT,
                     OpKind.OUTPUT, OpKind.PARAM):
            assert operator_model.delay(kind, 32) == 0.0

    def test_divider_much_slower_than_multiplier(self, operator_model):
        assert operator_model.delay(OpKind.UDIV, 16) > \
            3 * operator_model.delay(OpKind.MUL, 16)

    def test_every_opcode_has_a_delay(self, operator_model):
        for kind in OpKind:
            assert operator_model.delay(kind, 16) >= 0.0


class TestPessimism:
    def test_pessimism_scales_delay(self):
        base = OperatorModel(pessimism=1.0)
        padded = OperatorModel(pessimism=1.5)
        assert padded.delay(OpKind.ADD, 16) == pytest.approx(
            1.5 * base.delay(OpKind.ADD, 16))

    def test_pessimism_below_one_rejected(self):
        with pytest.raises(ValueError):
            OperatorModel(pessimism=0.9)


class TestNodeInterface:
    def test_node_delay_and_timing(self, operator_model):
        builder = GraphBuilder()
        x = builder.param("x", 16)
        y = builder.param("y", 16)
        total = builder.add(x, y)
        timing = operator_model.timing(total)
        assert timing.delay_ps == operator_model.node_delay(total)
        assert timing.register_bits == 16

    def test_multi_operand_logic_deeper(self, operator_model):
        builder = GraphBuilder()
        operands = [builder.param(f"p{i}", 8) for i in range(8)]
        wide = builder.graph.add_node(OpKind.XOR, [o.node_id for o in operands])
        narrow = builder.xor(operands[0], operands[1])
        assert operator_model.node_delay(wide) > operator_model.node_delay(narrow)
