"""Warm-vs-cold byte parity and determinism of the DSE layer.

The warm-start engine's core contract: a probe served by any warm path
(memo, clone + rebase, plateau solution reuse) returns *exactly* the
schedule a from-scratch cold solve returns -- same stages dict, same stage
count, same register count -- at every probed period, in any probe order.
A hypothesis sweep drives randomized clock orders over seeded generated
designs; subprocess tests pin hash-seed independence and ``--jobs``
independence of the deterministic payload.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.dse.search import deterministic_payload, run_dse
from repro.dse.warm import ProblemCache


def gen_design(seed: int) -> str:
    return (f"gen:seed={seed},depth=5,width=3,fanout=2,bits=8,inputs=3,"
            "clock=2000,mix=add3+xor2+sub1+rotr1")


def assert_probe_parity(warm, cold):
    """The deterministic fields of a warm probe must equal the cold ones."""
    assert warm.feasible == cold.feasible
    assert warm.reason == cold.reason
    assert warm.num_stages == cold.num_stages
    assert warm.num_registers == cold.num_registers
    assert warm.stages == cold.stages  # byte-identical schedule


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_warm_equals_cold_in_any_probe_order(data):
    seed = data.draw(st.integers(min_value=0, max_value=5), label="seed")
    design = gen_design(seed)
    cache = ProblemCache()
    context = cache.context(design)
    low = context.lower_bound_ps * 0.9   # includes budget-infeasible probes
    high = context.default_clock_ps * 1.6
    grid = [round(low + (high - low) * step / 7, 3) for step in range(8)]
    order = data.draw(st.permutations(grid), label="probe order")
    for period in order:
        warm = cache.probe(design, period)
        cold = cache.cold_probe(design, period)
        assert_probe_parity(warm, cold)
    # Re-probing the whole grid is served entirely by the memo -- and still
    # byte-identical.
    for period in grid:
        again = cache.probe(design, period)
        assert again.memo_hit
        assert_probe_parity(again, cache.cold_probe(design, period))


def test_warm_equals_cold_across_real_design_search():
    """End-to-end: every probe of a real min-clock search is cold-identical."""
    cache = ProblemCache()
    from repro.dse.optimizer import MinClockOptimizer
    from repro.dse.search import drive_optimizer

    optimizer = MinClockOptimizer("rrot", 2500.0, resolution_ps=5.0)
    probes = drive_optimizer(
        optimizer,
        lambda batch: [cache.probe("rrot", period) for period in batch],
        width=3)
    assert optimizer.converged
    warm_served = [p for p in probes if p.warm_patched or p.memo_hit]
    assert warm_served, "search too short to exercise any warm path"
    for probe in probes:
        assert_probe_parity(probe, cache.cold_probe("rrot",
                                                    probe.clock_period_ps))


def test_jobs_do_not_change_the_deterministic_payload():
    """--jobs 1 and --jobs 2 probe identical periods at fixed --speculate."""
    designs = [gen_design(7)]
    kwargs = dict(mode="minclock", speculate=3, resolution_ps=10.0,
                  max_probes=48)
    serial = run_dse(designs, jobs=1, **kwargs)
    parallel = run_dse(designs, jobs=2, **kwargs)
    assert deterministic_payload(serial.to_payload()) \
        == deterministic_payload(parallel.to_payload())


_DSE_SCRIPT = r"""
import json, sys
from repro.dse.search import deterministic_payload, run_dse

design = ("gen:seed=3,depth=5,width=3,fanout=2,bits=8,inputs=3,"
          "clock=2000,mix=add3+xor2+sub1+rotr1")
result = run_dse([design], mode="minclock", jobs=1, speculate=2,
                 resolution_ps=10.0)
json.dump(deterministic_payload(result.to_payload()), sys.stdout,
          sort_keys=True)
"""


def _run_under_seed(script: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")
    completed = subprocess.run([sys.executable, "-c", script], env=env,
                               capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


@pytest.mark.parametrize("other_seed", ["31337", "random"])
def test_dse_payload_is_hashseed_independent(other_seed):
    baseline = _run_under_seed(_DSE_SCRIPT, "0")
    payload = json.loads(baseline)
    assert payload["designs"][0]["min_clock_ps"] is not None
    assert _run_under_seed(_DSE_SCRIPT, other_seed) == baseline
