"""Unit tests of the DSE search strategies over synthetic probe outcomes.

No LP is solved here: a feasibility oracle stands in for the probe
evaluator, so these tests pin down the *search* behaviour alone --
bracketing, batch speculation, convergence, the stage-cap sharpening and
the Pareto front/refinement logic.
"""

from __future__ import annotations

import pytest

from repro.dse.optimizer import (
    BestPoint,
    MinClockOptimizer,
    Optimizer,
    ParetoOptimizer,
)
from repro.dse.warm import ProbeOutcome


def outcome(period: float, feasible: bool, stages: int | None = None,
            registers: int | None = None) -> ProbeOutcome:
    return ProbeOutcome(design="synthetic", clock_period_ps=period,
                        feasible=feasible,
                        reason="" if feasible else "budget",
                        num_stages=stages, num_registers=registers)


def drive(optimizer, oracle, width: int = 1) -> int:
    """Run an optimizer against a feasibility oracle; returns probe count."""
    probes = 0
    while not optimizer.done:
        batch = optimizer.next_batch(width)
        if not batch:
            break
        for period in batch:
            optimizer.process_outcome(period, oracle(period))
            probes += 1
    return probes


def threshold_oracle(min_feasible: float):
    """Feasible exactly at and above ``min_feasible`` (monotone)."""
    def oracle(period: float) -> ProbeOutcome:
        return outcome(period, period >= min_feasible,
                       stages=4, registers=100)
    return oracle


class TestMinClockOptimizer:
    def test_satisfies_protocol(self):
        optimizer = MinClockOptimizer("d", 1000.0)
        assert isinstance(optimizer, Optimizer)

    @pytest.mark.parametrize("width", [1, 3, 8])
    def test_converges_to_threshold(self, width):
        optimizer = MinClockOptimizer("d", 2000.0, resolution_ps=5.0)
        drive(optimizer, threshold_oracle(731.0), width=width)
        assert optimizer.converged
        best = optimizer.best
        assert isinstance(best, BestPoint)
        # The answer brackets the true threshold from above, within
        # resolution.
        assert 731.0 <= best.clock_period_ps <= 731.0 + 5.0

    def test_wider_batches_never_hurt_convergence(self):
        narrow = MinClockOptimizer("d", 2000.0, resolution_ps=5.0)
        wide = MinClockOptimizer("d", 2000.0, resolution_ps=5.0)
        drive(narrow, threshold_oracle(500.0), width=1)
        drive(wide, threshold_oracle(500.0), width=8)
        assert narrow.converged and wide.converged
        assert wide.best.clock_period_ps <= narrow.best.clock_period_ps + 5.0

    def test_brackets_upwards_when_start_infeasible(self):
        optimizer = MinClockOptimizer("d", 100.0, resolution_ps=5.0)
        drive(optimizer, threshold_oracle(900.0))
        assert optimizer.converged
        assert 900.0 <= optimizer.best.clock_period_ps <= 905.0

    def test_respects_probe_budget(self):
        optimizer = MinClockOptimizer("d", 2000.0, resolution_ps=1e-9,
                                      max_probes=7)
        probes = drive(optimizer, threshold_oracle(700.0))
        assert probes <= 7
        assert optimizer.done and not optimizer.converged

    def test_stage_cap_sharpens_feasibility(self):
        def oracle(period: float) -> ProbeOutcome:
            # Feasible everywhere above 400, but only within the cap above
            # 1000: the capped answer must be ~1000, not ~400.
            stages = 3 if period >= 1000.0 else 9
            return outcome(period, period >= 400.0, stages=stages,
                           registers=50)

        capped = MinClockOptimizer("d", 2000.0, resolution_ps=5.0,
                                   max_stages=4)
        drive(capped, oracle)
        assert capped.converged
        assert 1000.0 <= capped.best.clock_period_ps <= 1005.0
        assert capped.best.outcome.num_stages == 3

    def test_non_monotone_feasibility_drops_stale_floor(self):
        optimizer = MinClockOptimizer("d", 2000.0, resolution_ps=5.0)
        optimizer.process_outcome(1000.0, outcome(1000.0, False))
        assert optimizer.infeasible_at == 1000.0
        # A later feasible point *below* the recorded floor invalidates it.
        optimizer.process_outcome(800.0, outcome(800.0, True, 4, 10))
        assert optimizer.feasible_at == 800.0
        assert optimizer.infeasible_at is None
        assert not optimizer.converged

    def test_never_reproposes_answered_periods(self):
        optimizer = MinClockOptimizer("d", 2000.0, resolution_ps=1.0)
        oracle = threshold_oracle(620.0)
        seen: list[float] = []
        while not optimizer.done:
            batch = optimizer.next_batch(4)
            if not batch:
                break
            assert not set(batch) & set(seen)
            assert len(set(batch)) == len(batch)
            seen.extend(batch)
            for period in batch:
                optimizer.process_outcome(period, oracle(period))

    def test_best_is_none_before_any_feasible_probe(self):
        optimizer = MinClockOptimizer("d", 1000.0)
        assert optimizer.best is None
        optimizer.process_outcome(500.0, outcome(500.0, False))
        assert optimizer.best is None

    @pytest.mark.parametrize("kwargs", [
        {"start_clock_ps": 0.0},
        {"start_clock_ps": 100.0, "resolution_ps": 0.0},
        {"start_clock_ps": 100.0, "bracket_factor": 1.0},
        {"start_clock_ps": 100.0, "max_probes": 0},
    ])
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ValueError):
            MinClockOptimizer("d", **kwargs)


class TestParetoOptimizer:
    @staticmethod
    def staircase(period: float) -> ProbeOutcome:
        """Longer periods -> fewer stages and fewer registers (realistic)."""
        if period < 300.0:
            return outcome(period, False)
        stages = max(1, int(3000.0 // period))
        return outcome(period, True, stages=stages, registers=stages * 11)

    def test_front_is_a_trade_off_staircase(self):
        optimizer = ParetoOptimizer("d", 1000.0, points=10)
        drive(optimizer, self.staircase, width=4)
        front = optimizer.front()
        assert front
        periods = [p.clock_period_ps for p in front]
        register_counts = [p.num_registers for p in front]
        assert periods == sorted(periods)
        # Strictly fewer registers at every slower point -- otherwise the
        # slower point is dominated and must not be on the front.
        assert register_counts == sorted(set(register_counts), reverse=True)
        assert optimizer.converged

    def test_refinement_fills_stage_gaps(self):
        unrefined = ParetoOptimizer("d", 1000.0, points=3, span=(0.4, 2.0),
                                    refine_rounds=0)
        refined = ParetoOptimizer("d", 1000.0, points=3, span=(0.4, 2.0),
                                  refine_rounds=3)
        drive(unrefined, self.staircase, width=2)
        drive(refined, self.staircase, width=2)
        assert len(refined.front()) >= len(unrefined.front())
        assert len(refined.outcomes) > len(unrefined.outcomes)

    def test_best_is_the_fastest_clock_on_the_front(self):
        optimizer = ParetoOptimizer("d", 1000.0, points=6)
        drive(optimizer, self.staircase)
        best = optimizer.best
        assert best is not None
        assert best.clock_period_ps == min(
            p.clock_period_ps for p in optimizer.front())

    def test_all_infeasible_is_done_but_not_converged(self):
        optimizer = ParetoOptimizer("d", 1000.0, points=4)
        drive(optimizer, lambda period: outcome(period, False))
        assert optimizer.done
        assert not optimizer.converged
        assert optimizer.best is None
        assert optimizer.front() == []

    @pytest.mark.parametrize("kwargs", [
        {"start_clock_ps": 0.0},
        {"start_clock_ps": 100.0, "points": 1},
        {"start_clock_ps": 100.0, "span": (2.0, 0.5)},
        {"start_clock_ps": 100.0, "span": (0.0, 2.0)},
    ])
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ValueError):
            ParetoOptimizer("d", **kwargs)
