"""Warm-start engine tests: cache behaviour, rebasing, clone isolation.

The byte-parity *sweeps* live in ``test_parity.py``; this module pins the
mechanics -- which path serves a probe (memo / budget / warm / cold), the
pair-rank donor selection, the vectorized rebase, and the guarantee that
mutating a cloned :class:`~repro.sdc.problem.ScheduleProblem` never
perturbs its donor's solved schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse.warm import ProblemCache, build_context
from repro.sdc.problem import ScheduleProblem
from repro.sdc.solver import solve_problem

DESIGN = "rrot"
GEN_DESIGN = ("gen:seed=11,depth=6,width=4,fanout=2,bits=8,inputs=3,"
              "clock=2000,mix=add3+xor2+sub1+rotr1")


@pytest.fixture(scope="module")
def context():
    return build_context(DESIGN)


class TestDesignContext:
    def test_lower_bound_is_worst_delay_plus_overhead(self, context):
        assert context.lower_bound_ps == pytest.approx(
            context.worst_delay_ps + context.register_overhead_ps)

    def test_pair_rank_is_monotone_in_budget(self, context):
        budgets = np.linspace(context.worst_delay_ps,
                              context.default_clock_ps * 2, 17)
        ranks = [context.pair_rank(float(b)) for b in budgets]
        assert ranks == sorted(ranks, reverse=True)

    def test_pair_rank_matches_matrix_count(self, context):
        budget = context.default_clock_ps - context.register_overhead_ps
        mask = context.matrix > budget
        np.fill_diagonal(mask, False)
        assert context.pair_rank(budget) == int(mask.sum())


class TestProblemCacheServingPaths:
    def test_budget_rejection_touches_no_lp(self, context):
        cache = ProblemCache()
        outcome = cache.probe(DESIGN, context.worst_delay_ps / 2)
        assert not outcome.feasible and outcome.reason == "budget"
        assert cache.budget_skips == 1 and cache.cold_solves == 0

    def test_first_probe_is_cold_second_identical_is_memo(self):
        cache = ProblemCache()
        first = cache.probe(DESIGN, 2500.0)
        again = cache.probe(DESIGN, 2500.0)
        assert first.feasible and not first.memo_hit and first.lp_rebuild
        assert again.memo_hit and not again.lp_rebuild
        assert again.stages == first.stages
        assert cache.cold_solves == 1 and cache.memo_hits == 1

    def test_same_rank_neighbour_is_served_warm(self, context):
        cache = ProblemCache()
        base = cache.probe(DESIGN, 2500.0)
        rank = context.pair_rank(2500.0 - context.register_overhead_ps)
        # Walk outward until a period shares the base probe's pair rank.
        for delta in (1.0, 2.0, 4.0, 8.0):
            period = 2500.0 + delta
            if context.pair_rank(period - context.register_overhead_ps) \
                    == rank:
                break
        else:
            pytest.skip("no same-rank neighbour within 8 ps")
        warm = cache.probe(DESIGN, period)
        assert warm.warm_patched and not warm.lp_rebuild
        assert warm.feasible == base.feasible
        assert cache.warm_solves == 1

    def test_zero_patch_rebase_reuses_donor_solution(self, context):
        cache = ProblemCache()
        base = cache.probe(DESIGN, 2500.0)
        rank = context.pair_rank(2500.0 - context.register_overhead_ps)
        for delta in (0.001, 0.01, 0.1):
            period = 2500.0 + delta
            if context.pair_rank(period - context.register_overhead_ps) \
                    != rank:
                continue
            reuse = cache.probe(DESIGN, period)
            if reuse.bound_patches == 0:
                assert reuse.solution_reuse
                assert reuse.stages == base.stages
                assert cache.reused_solutions >= 1
                return
        pytest.skip("no zero-patch plateau neighbour found")

    def test_rank_mismatch_rebuilds_instead_of_rebasing(self, context):
        cache = ProblemCache()
        cache.probe(DESIGN, context.default_clock_ps * 4)
        near = cache.probe(DESIGN, context.lower_bound_ps + 50.0)
        # Very different periods constrain very different pair sets; the
        # cache must rebuild the clone, not attempt the doomed rebase.
        assert near.lp_rebuild and not near.warm_patched
        assert near.bound_patches == 0

    def test_counters_partition_all_probes(self):
        cache = ProblemCache()
        context = cache.context(GEN_DESIGN)
        periods = np.linspace(context.lower_bound_ps * 0.8,
                              context.default_clock_ps * 1.5, 12)
        for period in periods:
            cache.probe(GEN_DESIGN, float(period))
        total = (cache.memo_hits + cache.warm_solves + cache.cold_solves
                 + cache.budget_skips)
        assert total == len(periods)


class TestColdProbeReference:
    def test_cold_probe_never_caches(self):
        cache = ProblemCache()
        first = cache.cold_probe(DESIGN, 2500.0)
        second = cache.cold_probe(DESIGN, 2500.0)
        assert first.feasible and second.feasible
        assert not second.memo_hit
        assert cache.cold_solves == 0 and cache.memo_hits == 0
        assert first.stages == second.stages


class TestCloneIsolation:
    """Satellite regression: mutating a clone never perturbs its donor."""

    def _fresh_problem(self, context) -> ScheduleProblem:
        budget = context.default_clock_ps - context.register_overhead_ps
        return ScheduleProblem(context.graph, context.matrix,
                               context.index_of, budget)

    def test_rebasing_a_clone_leaves_donor_schedule_byte_identical(
            self, context):
        donor = self._fresh_problem(context)
        donor_stages = solve_problem(donor)
        donor_b_ub = donor.lp().b_ub.copy()
        donor_bounds = [(c.u, c.v, c.bound)
                        for c in donor.system.constraints("timing")]

        clone = donor.clone()
        tighter = donor.timing_budget_ps * 0.7
        clone.retarget(context.matrix, context.index_of, tighter)
        solve_problem(clone)

        assert donor.timing_budget_ps != tighter
        np.testing.assert_array_equal(donor.lp().b_ub, donor_b_ub)
        assert [(c.u, c.v, c.bound)
                for c in donor.system.constraints("timing")] == donor_bounds
        assert solve_problem(donor) == donor_stages

    def test_mutating_clone_constraints_does_not_leak(self, context):
        donor = self._fresh_problem(context)
        solve_problem(donor)
        before = len(donor.system)
        clone = donor.clone()
        some_node = next(iter(donor.system.variables))
        clone.system.add(some_node, some_node, 0, kind="user")
        assert len(donor.system) == before

    def test_clone_shares_timing_pack_and_immutables(self, context):
        donor = self._fresh_problem(context)
        pack = donor.timing_pack(context.index_of)
        clone = donor.clone()
        assert clone.timing_pack(context.index_of) is pack
        assert clone.register_weights is donor.register_weights
        assert clone.users_map is donor.users_map


class TestTimingPackRebase:
    def test_pack_matches_constraint_system(self, context):
        problem = ScheduleProblem(
            context.graph, context.matrix, context.index_of,
            context.default_clock_ps - context.register_overhead_ps)
        pack = problem.timing_pack(context.index_of)
        entries = problem.system.timing_entries()
        assert len(pack.rows) == len(entries)
        for position, (u, v, row) in enumerate(entries):
            assert pack.node_u[position] == u
            assert pack.node_v[position] == v
            assert pack.lp_rows[position] == row
            assert pack.rows[position] == context.index_of[u]
            assert pack.cols[position] == context.index_of[v]

    def test_rebase_equals_fresh_build(self, context):
        budget = context.default_clock_ps - context.register_overhead_ps
        problem = ScheduleProblem(context.graph, context.matrix,
                                  context.index_of, budget)
        solve_problem(problem)
        # Pick a different budget with the same constrained-pair set.
        target = None
        for delta in (1.0, 5.0, 25.0, 100.0):
            if context.pair_rank(budget + delta) == context.pair_rank(budget):
                target = budget + delta
                break
        if target is None:
            pytest.skip("no same-rank budget nearby")
        assert problem.rebase_timing(context.matrix, context.index_of, target)
        fresh = ScheduleProblem(context.graph, context.matrix,
                                context.index_of, target)
        np.testing.assert_array_equal(problem.lp().b_ub, fresh.lp().b_ub)
        assert solve_problem(problem) == solve_problem(fresh)

    def test_rebase_refuses_when_pair_set_moves(self, context):
        budget = context.default_clock_ps - context.register_overhead_ps
        problem = ScheduleProblem(context.graph, context.matrix,
                                  context.index_of, budget)
        target = context.worst_delay_ps * 1.01
        if context.pair_rank(target) == context.pair_rank(budget):
            pytest.skip("pair set did not move over the tested range")
        bounds_before = [(c.u, c.v, c.bound)
                         for c in problem.system.constraints("timing")]
        assert not problem.rebase_timing(context.matrix, context.index_of,
                                         target)
        assert [(c.u, c.v, c.bound)
                for c in problem.system.constraints("timing")] \
            == bounds_before
