"""Tests of ``runner dse``: dispatch, payloads, and the report wiring."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import main
from repro.experiments.serialize import SCHEMA_VERSION, experiment_payload
from repro.report.diff import diff_frames
from repro.report.frame import load_experiment_payload, metric_spec

SMALL = ("gen:seed=9,depth=5,width=3,fanout=2,bits=8,inputs=3,"
         "clock=2000,mix=add3+xor2+sub1+rotr1")


def dse_envelope(min_clock_ps: float, design: str = SMALL,
                 warm_hit_rate: float = 0.5) -> dict:
    """A minimal dse envelope (current schema) for loader/diff tests."""
    return {
        "schema": SCHEMA_VERSION, "experiment": "dse", "quick": False,
        "jobs": 1, "solver": "full", "elapsed_s": 0.1,
        "data": {
            "mode": "minclock", "resolution_ps": 10.0, "max_stages": None,
            "speculate": 2,
            "designs": [{
                "design": design, "mode": "minclock",
                "start_clock_ps": 2000.0, "min_clock_ps": min_clock_ps,
                "converged": True, "num_probes": 12, "probes": [],
                "front": [],
                "warm": {"warm_hit_rate": warm_hit_rate, "lp_rebuilds": 4,
                         "solve_time_s": 0.05},
                "elapsed_s": 0.1,
            }],
        },
    }


class TestDseCommand:
    def test_minclock_end_to_end_with_json(self, tmp_path, capsys):
        json_path = tmp_path / "out" / "dse.json"
        assert main(["dse", "--designs", SMALL, "--resolution-ps", "50",
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "Min clock (ps)" in out and "dse minclock" in out
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["experiment"] == "dse"
        design = payload["data"]["designs"][0]
        assert design["converged"]
        assert design["min_clock_ps"] is not None
        # Probes are sorted by period and carry only deterministic fields.
        periods = [p["clock_period_ps"] for p in design["probes"]]
        assert periods == sorted(periods)
        assert "solve_time_s" not in design["probes"][0]

    def test_store_flag_archives_probes_and_payload(self, tmp_path, capsys):
        from repro.dse.search import probe_key
        from repro.store import ArtifactStore

        store_path = tmp_path / "dse-store.jsonl"
        assert main(["dse", "--designs", SMALL, "--resolution-ps", "50",
                     "--store", str(store_path)]) == 0
        capsys.readouterr()
        store = ArtifactStore.load(store_path)
        kinds = store.kinds()
        assert kinds["payload"] == 1
        assert kinds["dse-probe"] >= 2
        probe = next(iter(store.kind("dse-probe")))
        body = probe.body
        assert probe.key == probe_key(body["design"], body["mode"],
                                      body["clock_period_ps"],
                                      body["max_stages"])
        # Probe bodies are deterministic: no provenance or wall clock.
        assert "solve_time_s" not in body and "elapsed_s" not in body
        # Re-running the same search supersedes its probes, never
        # duplicates them (payload records are content-addressed over
        # their data, which includes wall-clock fields, so those may
        # legitimately differ between runs).
        assert main(["dse", "--designs", SMALL, "--resolution-ps", "50",
                     "--store", str(store_path)]) == 0
        capsys.readouterr()
        rerun = ArtifactStore(store_path).open_for_append()
        report = rerun.compact()
        assert report.kinds["dse-probe"] == kinds["dse-probe"]
        assert report.dropped >= kinds["dse-probe"]

    def test_pareto_mode_prints_front(self, capsys):
        assert main(["dse", "--designs", SMALL, "--mode", "pareto",
                     "--points", "5"]) == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out
        assert "Registers" in out

    def test_speculate_flag_reaches_the_payload(self, tmp_path):
        json_path = tmp_path / "dse.json"
        assert main(["dse", "--designs", SMALL, "--resolution-ps", "100",
                     "--speculate", "5", "--json", str(json_path)]) == 0
        payload = json.loads(json_path.read_text())
        assert payload["data"]["speculate"] == 5

    def test_needs_designs_or_quick(self):
        with pytest.raises(SystemExit):
            main(["dse"])

    def test_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            main(["dse", "--designs", "no-such-design-anywhere"])

    @pytest.mark.parametrize("flags", [["--jobs", "0"], ["--speculate", "0"]])
    def test_rejects_non_positive_workers(self, flags):
        with pytest.raises(SystemExit):
            main(["dse", "--designs", SMALL, *flags])


class TestSerializeAndReportWiring:
    def test_experiment_payload_accepts_dse_results(self):
        from repro.dse.search import run_dse

        result = run_dse([SMALL], resolution_ps=100.0)
        payload = experiment_payload("dse", result)
        assert payload["schema"] == SCHEMA_VERSION == 8
        assert payload["data"]["designs"][0]["design"] == SMALL

    def test_frame_loads_dse_payload(self, tmp_path):
        path = tmp_path / "dse.json"
        path.write_text(json.dumps(dse_envelope(min_clock_ps=750.0)))
        frame = load_experiment_payload(path)
        assert len(frame.rows) == 1
        row = frame.rows[0]
        assert row.value("design") == SMALL
        assert row.value("clock_period_ps") == 2000.0
        assert row.metrics["min_clock_ps"] == 750.0
        assert row.metrics["dse_probes"] == 12.0
        assert row.metrics["warm_hit_rate"] == 0.5
        assert row.metrics["lp_rebuilds"] == 4.0

    def test_min_clock_is_a_lower_is_better_metric(self):
        assert not metric_spec("min_clock_ps").higher_is_better
        assert metric_spec("warm_hit_rate").higher_is_better

    def _frames(self, tmp_path, old_clock: float, new_clock: float):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(dse_envelope(min_clock_ps=old_clock)))
        new.write_text(json.dumps(dse_envelope(min_clock_ps=new_clock)))
        return (load_experiment_payload(old, source="old"),
                load_experiment_payload(new, source="new"))

    def test_diff_flags_a_min_clock_increase_as_regression(self, tmp_path):
        baseline, candidate = self._frames(tmp_path, 750.0, 800.0)
        report = diff_frames(baseline, candidate, metric="min_clock_ps")
        assert report.num_regressed == 1 and report.exit_code == 1

    def test_diff_accepts_a_min_clock_decrease(self, tmp_path):
        baseline, candidate = self._frames(tmp_path, 750.0, 700.0)
        report = diff_frames(baseline, candidate, metric="min_clock_ps")
        assert report.num_regressed == 0 and report.exit_code == 0

    def test_report_diff_cli_gates_on_min_clock(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(dse_envelope(min_clock_ps=750.0)))
        new.write_text(json.dumps(dse_envelope(min_clock_ps=800.0)))
        assert main(["report", "diff", str(old), str(new),
                     "--metric", "min_clock_ps"]) == 1
        assert main(["report", "diff", str(old), str(old),
                     "--metric", "min_clock_ps"]) == 0
        capsys.readouterr()
