"""Tests for the DSE minimum-II search mode."""

import pytest

from repro.dse.cli import format_dse
from repro.dse.search import DseResult, probe_key, probe_records, run_dse
from repro.dse.warm import ProblemCache

LOOP = "loop:seed=1,depth=4,width=3,bits=16,inputs=2,phis=2,dist=1,clock=2500"


class TestMinIiSearch:
    def test_dag_resolves_to_ii_one(self):
        final, trace = ProblemCache().min_ii_search("rrot")
        assert final.feasible and final.ii == 1
        assert [probe.ii for probe in trace] == [1]

    def test_loop_design_records_probe_trace(self):
        final, trace = ProblemCache().min_ii_search(LOOP)
        assert final.feasible
        assert final.ii >= 1
        assert trace[0].ii == 1
        assert all(probe.ii is not None for probe in trace)
        # The final answer is the smallest feasible candidate probed.
        feasible = [probe.ii for probe in trace if probe.feasible]
        assert final.ii == min(feasible)

    def test_ir_file_resolves_above_ii_one(self):
        final, trace = ProblemCache().min_ii_search("examples/loop_accum.ir")
        assert final.feasible and final.ii == 2
        assert final.num_stages is not None
        assert final.num_registers is not None
        assert len(trace) >= 2

    def test_warm_patch_counters_advance(self):
        final, trace = ProblemCache().min_ii_search("examples/loop_accum.ir")
        # Every probe past II=1 reuses the same problem via rebase_ii.
        assert any(probe.warm_patched for probe in trace)

    def test_budget_rejection_is_graceful(self):
        final, trace = ProblemCache().min_ii_search(LOOP, clock_period_ps=1.0)
        assert not final.feasible and final.reason == "budget"
        assert trace == []

    def test_outcome_payload_carries_ii(self):
        final, _ = ProblemCache().min_ii_search("examples/loop_accum.ir")
        assert final.to_payload()["ii"] == 2


class TestRunDseMinIi:
    def test_end_to_end_result(self):
        result = run_dse(["examples/loop_accum.ir", "rrot"], mode="min-ii")
        assert isinstance(result, DseResult)
        assert result.mode == "min-ii"
        by_name = {d.design: d for d in result.designs}
        assert by_name["examples/loop_accum.ir"].min_ii == 2
        assert by_name["rrot"].min_ii == 1
        assert all(d.converged for d in result.designs)

    def test_jobs_do_not_change_results(self):
        serial = run_dse([LOOP, "rrot"], mode="min-ii", jobs=1)
        parallel = run_dse([LOOP, "rrot"], mode="min-ii", jobs=2)
        assert ([d.min_ii for d in serial.designs]
                == [d.min_ii for d in parallel.designs])

    def test_payload_round_trips_min_ii(self):
        result = run_dse(["examples/loop_accum.ir"], mode="min-ii")
        payload = result.to_payload()
        design = payload["designs"][0]
        assert design["min_ii"] == 2
        assert all("ii" in probe for probe in design["probes"])

    def test_table_renders_min_ii_columns(self):
        result = run_dse(["examples/loop_accum.ir"], mode="min-ii")
        table = format_dse(result)
        assert "Min II" in table
        assert "dse min-ii: 1 designs" in table

    def test_probe_records_are_ii_keyed(self):
        result = run_dse(["examples/loop_accum.ir"], mode="min-ii")
        records = probe_records(result)
        probes = [r for r in records if r.kind == "dse-probe"]
        # Distinct II candidates produce distinct content keys.
        assert len({r.key for r in probes}) == len(probes)

    def test_probe_key_identity_only_gains_ii_when_set(self):
        without = probe_key("d", "minclock", 1000.0, None)
        with_none = probe_key("d", "minclock", 1000.0, None, ii=None)
        assert without == with_none  # pre-II store keys are unchanged
        assert probe_key("d", "min-ii", 1000.0, None, ii=2) != without

    def test_unknown_design_raises(self):
        with pytest.raises(KeyError):
            run_dse(["no-such-design"], mode="min-ii")
