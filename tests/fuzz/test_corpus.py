"""Replay the committed fuzz corpus as plain regression tests.

``corpus/valid/*.ir`` must run the whole parse -> verify -> schedule ->
execute pipeline successfully; ``corpus/invalid/*.ir`` must be rejected
with a controlled diagnostic.  Counterexamples hypothesis finds in the
randomized (``dev``) profile get checked in here, so the derandomized CI
profile still replays them forever.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.ir.verify import IRVerificationError
from tests.fuzz.test_pipeline_fuzz import CONTROLLED_ERRORS, _run_pipeline

CORPUS = Path(__file__).parent / "corpus"

_VALID = sorted((CORPUS / "valid").glob("*.ir"))
_INVALID = sorted((CORPUS / "invalid").glob("*.ir"))


def test_corpus_is_populated():
    assert len(_VALID) >= 5 and len(_INVALID) >= 7


@pytest.mark.parametrize("path", _VALID, ids=lambda p: p.stem)
def test_valid_corpus_runs_pipeline(path):
    _run_pipeline(path.read_text())


@pytest.mark.parametrize("path", _INVALID, ids=lambda p: p.stem)
def test_invalid_corpus_rejected_with_diagnostic(path):
    with pytest.raises(CONTROLLED_ERRORS) as excinfo:
        _run_pipeline(path.read_text())
    # Parser-level rejections always name the offending line.
    if isinstance(excinfo.value, ValueError) and not isinstance(
            excinfo.value, IRVerificationError):
        assert "line " in str(excinfo.value)
