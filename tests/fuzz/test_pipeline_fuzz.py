"""Differential fuzzing of the parse -> schedule -> verify pipeline.

Three input families, one contract:

* **valid** -- random pipelined-loop graphs printed through
  :func:`graph_to_text`.  The full pipeline (parse, structural verify, SDC
  schedule with automatic minimum-II search, cycle-accurate execution
  check) must succeed outright: every emitted II schedule is executed and
  compared against the sequential loop semantics.
* **mutated-valid** -- valid texts with a few random line/character edits.
  The pipeline may accept (mutations can be benign) or reject, but every
  rejection must be a controlled diagnostic (:class:`ValueError`,
  :class:`IRVerificationError`, :class:`SdcInfeasibleError`) -- never a
  ``KeyError``/``IndexError``/``RecursionError``/``TypeError`` escaping
  some internal layer.
* **garbage** -- arbitrary text, plus text that starts with a valid
  ``design`` line to reach the deeper parser states.  Same contract.

Across the families the suite runs >= 2000 examples.  Inputs are kept tiny
(<= a dozen operations) so each example schedules in milliseconds.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ir.builder import GraphBuilder
from repro.ir.ops import OpKind
from repro.ir.textual import graph_to_text, parse_design_text
from repro.ir.verify import (IRVerificationError, verify_graph,
                             verify_ii_schedule)
from repro.sdc.scheduler import SdcScheduler
from repro.sdc.solver import SdcInfeasibleError
from repro.tech.delay_model import OperatorModel

#: Errors the pipeline is allowed to raise on malformed input.  Anything
#: else escaping (KeyError, IndexError, RecursionError, TypeError, ...)
#: is a crash, and the fuzzer fails the example.
CONTROLLED_ERRORS = (ValueError, IRVerificationError, SdcInfeasibleError)

#: Generous default clock so valid generated designs always schedule
#: (every single operation fits one stage with room to spare).
_CLOCK_PS = 20_000.0

_MODEL = OperatorModel(pessimism=1.0)

_BINARY = ("add", "sub", "xor", "and_", "or_", "mul")


def _run_pipeline(text: str) -> None:
    """parse -> verify -> schedule -> execute; raises on any failure."""
    graph, clock_ps = parse_design_text(text)
    verify_graph(graph)
    if not len(graph):
        return
    scheduler = SdcScheduler(_MODEL, clock_period_ps=clock_ps or _CLOCK_PS)
    result = scheduler.schedule(graph)
    verify_ii_schedule(graph, result.schedule.stages, result.schedule.ii,
                       iterations=3, num_vectors=2)


@st.composite
def _loop_graphs(draw):
    """Tiny random pipelined-loop designs (possibly loop-free)."""
    builder = GraphBuilder(draw(st.sampled_from(["g", "fuzz design", "x#1"])))
    width = draw(st.sampled_from([4, 8, 16]))
    pool = [builder.param(f"p{i}", width)
            for i in range(draw(st.integers(min_value=1, max_value=2)))]
    pool.append(builder.constant(
        draw(st.integers(min_value=0, max_value=(1 << width) - 1)), width))
    phis = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        phi = builder.phi(draw(st.sampled_from(pool)))
        phis.append(phi)
        pool.append(phi)
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        method = draw(st.sampled_from(_BINARY))
        pool.append(getattr(builder, method)(draw(st.sampled_from(pool)),
                                             draw(st.sampled_from(pool))))
    for phi in phis:
        candidates = [n for n in pool if n.kind is not OpKind.PHI]
        builder.back_edge(phi, draw(st.sampled_from(candidates)),
                          distance=draw(st.integers(min_value=1, max_value=2)))
    builder.output(pool[-1])
    return builder.graph


@st.composite
def _mutated_texts(draw):
    """A valid text with 1-3 random line- or character-level edits."""
    lines = graph_to_text(draw(_loop_graphs())).splitlines()
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(st.integers(min_value=0, max_value=5))
        index = draw(st.integers(min_value=0, max_value=len(lines) - 1))
        if kind == 0 and len(lines) > 1:
            del lines[index]
        elif kind == 1:
            lines.insert(index, lines[draw(st.integers(
                min_value=0, max_value=len(lines) - 1))])
        elif kind == 2:
            other = draw(st.integers(min_value=0, max_value=len(lines) - 1))
            lines[index], lines[other] = lines[other], lines[index]
        elif kind == 3:
            line = lines[index]
            if line:
                at = draw(st.integers(min_value=0, max_value=len(line) - 1))
                lines[index] = line[:at] + draw(st.sampled_from(
                    list("n0123456789#=,()\": x"))) + line[at + 1:]
        elif kind == 4:
            line = lines[index]
            at = draw(st.integers(min_value=0, max_value=len(line)))
            lines[index] = line[:at]
        else:
            lines.insert(index, draw(st.text(max_size=25)))
    return "\n".join(lines)


def _assert_no_crash(text: str) -> None:
    try:
        _run_pipeline(text)
    except CONTROLLED_ERRORS:
        pass


@settings(max_examples=500)
@given(_loop_graphs())
def test_valid_designs_run_the_full_pipeline(graph):
    # No except clause: printed valid designs must parse, verify, schedule
    # and pass the cycle-accurate II execution check outright.
    _run_pipeline(graph_to_text(graph))


@settings(max_examples=700)
@given(_mutated_texts())
def test_mutated_designs_never_crash(text):
    _assert_no_crash(text)


@settings(max_examples=500)
@given(st.text(max_size=200))
def test_garbage_never_crashes(text):
    _assert_no_crash(text)


@settings(max_examples=400)
@given(st.lists(st.text(alphabet=list(
    "n0123456789 =()#,:.\"\\\n adsuboxrmulphiconstanwidthbackedge->"),
    max_size=40), max_size=8))
def test_structured_garbage_never_crashes(lines):
    # Reaches the node/backedge grammar states a plain-text fuzzer rarely
    # hits: a valid design line followed by token soup.
    _assert_no_crash("design g\n" + "\n".join(lines))
