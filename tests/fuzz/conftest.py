"""Hypothesis profiles for the fuzz suite.

The default (``dev``) profile keeps hypothesis' randomized exploration so
local runs keep hunting for new counterexamples.  CI selects the pinned
``ci`` profile (``HYPOTHESIS_PROFILE=ci``): derandomized, so the fuzz-smoke
job is reproducible run-to-run, with the committed corpus
(``tests/fuzz/corpus/``) carrying past counterexamples as plain regression
tests that replay regardless of profile.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev", deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.register_profile(
    "ci", deadline=None, derandomize=True, print_blob=True,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
