"""Golden-file tests for the Markdown/CSV/JSON report renderings.

Regenerate with ``REPRO_REGEN_GOLDEN=1 pytest tests/report/test_render_golden.py``
after an intentional format change, and review the golden diff like code.
"""

import json
import os
from pathlib import Path

import pytest

from repro.report.aggregate import aggregate
from repro.report.diff import diff_frames
from repro.report.frame import ReportFrame, ReportRow
from repro.report.render import render_aggregate, render_diff

GOLDEN_DIR = Path(__file__).parent / "golden"


def check_golden(name: str, text: str) -> None:
    path = GOLDEN_DIR / name
    text = text + "\n"
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    assert path.exists(), f"golden file {path} missing; regenerate with " \
                          "REPRO_REGEN_GOLDEN=1"
    assert text == path.read_text(), f"{name} drifted from its golden file"


def _fixed_frame(perturb=0.0):
    rows = []
    for i, (design, extraction, registers) in enumerate([
            ("alpha", "fanout", 24.0), ("alpha", "delay", 32.0),
            ("beta", "fanout", 10.0), ("beta", "delay", 16.0)]):
        rows.append(ReportRow(
            job_id=f"{i + 1:x}" * 32, source="golden",
            axes={"design": design, "extraction": extraction,
                  "clock_period_ps": 2000.0},
            metrics={"registers_final": registers + (perturb if i == 0 else 0),
                     "iterations": 3.0 + i}))
    return ReportFrame(rows)


@pytest.fixture
def summary():
    return aggregate(_fixed_frame(), group_by=("design",),
                     metrics=("registers_final", "iterations"),
                     reducers=("count", "geomean", "mean", "p50", "p95"))


@pytest.fixture
def diff():
    return diff_frames(_fixed_frame(), _fixed_frame(perturb=6.0))


class TestSummaryGoldens:
    def test_markdown(self, summary):
        check_golden("summary.md", render_aggregate(summary, "markdown"))

    def test_csv(self, summary):
        check_golden("summary.csv", render_aggregate(summary, "csv"))

    def test_json(self, summary):
        text = render_aggregate(summary, "json")
        check_golden("summary.json", text)
        assert json.loads(text)["kind"] == "summary"  # stays parseable

    def test_ascii(self, summary):
        check_golden("summary.txt", render_aggregate(summary, "ascii"))


class TestDiffGoldens:
    def test_markdown(self, diff):
        check_golden("diff.md", render_diff(diff, "markdown"))

    def test_csv(self, diff):
        check_golden("diff.csv", render_diff(diff, "csv"))

    def test_json(self, diff):
        text = render_diff(diff, "json")
        check_golden("diff.json", text)
        assert json.loads(text)["exit_code"] == 1

    def test_ascii(self, diff):
        check_golden("diff.txt", render_diff(diff, "ascii"))


def test_md_alias_and_unknown_format(summary):
    assert render_aggregate(summary, "md") == \
        render_aggregate(summary, "markdown")
    with pytest.raises(ValueError, match="unknown report format"):
        render_aggregate(summary, "yaml")
