"""Tests for baseline diffing: job-id joins, thresholds, exit codes."""

import pytest

from repro.report.diff import diff_frames
from repro.report.frame import ReportFrame, ReportRow


def _frame(values, metric="registers_final", source="test"):
    return ReportFrame([
        ReportRow(job_id, source, {"design": f"d-{job_id}"},
                  {metric: float(value)})
        for job_id, value in values.items()])


class TestJoin:
    def test_identical_frames_zero_deltas_exit_zero(self):
        frame = _frame({"j1": 10, "j2": 4})
        report = diff_frames(frame, frame)
        assert report.num_changed == 0
        assert report.num_regressed == 0
        assert report.exit_code == 0
        assert report.mean_delta == 0.0
        assert report.geomean_ratio == pytest.approx(1.0)
        assert [d.job_id for d in report.deltas] == ["j1", "j2"]

    def test_jobs_on_only_one_side_reported_not_failed(self):
        old = _frame({"j1": 10, "gone": 7})
        new = _frame({"j1": 10, "added": 3})
        report = diff_frames(old, new)
        assert report.only_baseline == ["gone"]
        assert report.only_candidate == ["added"]
        assert len(report.deltas) == 1
        assert report.exit_code == 0

    def test_zero_joined_jobs_fails_the_gate(self):
        report = diff_frames(_frame({"j1": 10}), _frame({"j2": 10}))
        assert report.num_regressed == 0
        assert report.exit_code == 1
        assert report.to_payload()["exit_code"] == 1

    def test_row_missing_the_metric_counts_as_absent(self):
        old = ReportFrame([
            ReportRow("j1", "o", {}, {"registers_final": 10.0}),
            ReportRow("j2", "o", {}, {"iterations": 3.0}),  # no registers
        ])
        new = _frame({"j1": 10, "j2": 12})
        report = diff_frames(old, new)
        assert [d.job_id for d in report.deltas] == ["j1"]
        assert report.only_candidate == ["j2"]


class TestThresholds:
    def test_regression_beyond_default_threshold_fails(self):
        report = diff_frames(_frame({"j1": 100}), _frame({"j1": 101}))
        assert report.num_regressed == 1
        assert report.exit_code == 1
        (delta,) = report.deltas
        assert delta.regressed
        assert delta.rel_delta == pytest.approx(0.01)

    def test_threshold_tolerates_small_regressions(self):
        old, new = _frame({"j1": 100}), _frame({"j1": 104})
        assert diff_frames(old, new, threshold=0.05).exit_code == 0
        assert diff_frames(old, new, threshold=0.03).exit_code == 1

    def test_improvement_never_fails(self):
        report = diff_frames(_frame({"j1": 100}), _frame({"j1": 50}))
        assert report.exit_code == 0
        assert report.num_changed == 1
        assert report.geomean_ratio == pytest.approx(0.5)

    def test_higher_is_better_metric_flips_direction(self):
        old = _frame({"j1": 0.5}, metric="register_reduction")
        new = _frame({"j1": 0.4}, metric="register_reduction")
        assert diff_frames(old, new,
                           metric="register_reduction").exit_code == 1
        assert diff_frames(new, old,
                           metric="register_reduction").exit_code == 0

    def test_zero_baseline(self):
        same = diff_frames(_frame({"j1": 0}), _frame({"j1": 0}))
        assert same.exit_code == 0
        worse = diff_frames(_frame({"j1": 0}), _frame({"j1": 1}))
        assert worse.exit_code == 1
        assert worse.deltas[0].rel_delta == float("inf")
        assert worse.geomean_ratio is None

    def test_infinite_rel_delta_serialises_as_null(self):
        # json.dumps would emit the non-RFC token Infinity otherwise.
        import json

        payload = diff_frames(_frame({"j1": 0}),
                              _frame({"j1": 1})).to_payload()
        decoded = json.loads(json.dumps(payload))
        assert decoded["jobs"][0]["rel_delta"] is None
        assert decoded["jobs"][0]["regressed"] is True
        assert decoded["max_rel_delta"] is None

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            diff_frames(ReportFrame(), ReportFrame(), threshold=-0.1)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            diff_frames(ReportFrame(), ReportFrame(), metric="nope")


class TestPayload:
    def test_payload_carries_verdict_and_jobs(self):
        report = diff_frames(_frame({"j1": 10, "j2": 4}),
                             _frame({"j1": 12, "j2": 4}))
        payload = report.to_payload()
        assert payload["kind"] == "diff"
        assert payload["num_jobs"] == 2
        assert payload["num_regressed"] == 1
        assert payload["exit_code"] == 1
        regressed = [job for job in payload["jobs"] if job["regressed"]]
        assert [job["job_id"] for job in regressed] == ["j1"]
        assert regressed[0]["delta"] == 2.0
