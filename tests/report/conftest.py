"""Shared fixtures for the report-engine tests.

The report engine only reads files, so the tests fabricate small
campaign stores with hand-written (deterministic, cheap) results instead
of running real schedules.
"""

import pytest

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import RunStore


def make_spec(**overrides) -> CampaignSpec:
    defaults = dict(name="report-test", designs=["rrot"],
                    extraction=["fanout", "delay"], subgraph_counts=[4, 8],
                    max_iterations=2, backend="estimator",
                    use_characterized_delays=False)
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def synthetic_result(job, registers_final=None):
    """An executor-shaped result payload with controllable final registers."""
    final_registers = (registers_final if registers_final is not None
                       else 10 + job.index)
    return {
        "design": job.design,
        "initial": {"stages": 4, "registers": 20 + job.index,
                    "slack_ps": 500.0},
        "final": {"stages": 3, "registers": final_registers,
                  "slack_ps": 250.0},
        "iterations": 2,
        "evaluations": 6 + job.index,
        "registers_by_iteration": [20 + job.index, final_registers],
        "stages_by_iteration": [4, 3],
        "schedule": {"0": 0},
    }


def write_store(path, spec, result_fn=synthetic_result) -> RunStore:
    """Write a complete store for ``spec`` with fabricated job results."""
    store = RunStore(path)
    jobs = spec.jobs()
    store.open(spec, jobs=jobs)
    for job in jobs:
        store.record(job, result_fn(job), runtime_s=0.25)
    return store


@pytest.fixture
def spec():
    return make_spec()


@pytest.fixture
def store_path(tmp_path, spec):
    path = tmp_path / "store.jsonl"
    write_store(path, spec)
    return path
