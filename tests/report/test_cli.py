"""Tests for the ``runner report`` CLI: modes, formats, exit codes."""

import json

import pytest

from repro.experiments.runner import main
from repro.experiments.serialize import SCHEMA_VERSION
from tests.report.conftest import make_spec, synthetic_result, write_store


@pytest.fixture
def two_stores(tmp_path, spec):
    """(identical-content baseline, candidate) store paths."""
    old = tmp_path / "old.jsonl"
    new = tmp_path / "new.jsonl"
    write_store(old, spec)
    write_store(new, spec)
    return old, new


@pytest.fixture
def perturbed_store(tmp_path, spec):
    """A store whose first job has one extra final register."""
    path = tmp_path / "perturbed.jsonl"

    def result_fn(job):
        bump = 1 if job.index == 0 else 0
        return synthetic_result(job, registers_final=10 + job.index + bump)

    write_store(path, spec, result_fn)
    return path


class TestSummaryMode:
    def test_default_summary(self, store_path, capsys):
        assert main(["report", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "registers_final/geomean" in out
        assert "4 rows in 1 groups" in out

    def test_group_by_alias_and_multiple_metrics(self, store_path, capsys):
        assert main(["report", str(store_path), "--group-by", "m,extraction",
                     "--metric", "registers_final,iterations"]) == 0
        out = capsys.readouterr().out
        assert "subgraphs_per_iteration" in out
        assert "iterations/p95" in out

    def test_multiple_inputs_pool_rows(self, two_stores, capsys):
        old, new = two_stores
        assert main(["report", str(old), str(new),
                     "--group-by", "source"]) == 0
        out = capsys.readouterr().out
        assert "old.jsonl" in out and "new.jsonl" in out

    def test_out_and_json_artifacts(self, store_path, tmp_path, capsys):
        out_path = tmp_path / "sub" / "report.md"
        json_path = tmp_path / "sub" / "report.json"
        assert main(["report", str(store_path), "--format", "md",
                     "--out", str(out_path), "--json", str(json_path)]) == 0
        assert out_path.read_text().startswith("| design")
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["experiment"] == "report"
        assert payload["data"]["kind"] == "summary"
        assert payload["data"]["num_rows"] == 4

    def test_unknown_metric_is_a_usage_error(self, store_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["report", str(store_path), "--metric", "bogus"])
        assert excinfo.value.code == 2
        assert "known metrics" in capsys.readouterr().err

    def test_missing_input_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["report", str(tmp_path / "absent.jsonl")])
        assert excinfo.value.code == 2

    def test_help_works(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--group-by" in out and "--threshold" in out


class TestDiffMode:
    def test_identical_stores_zero_delta_exit_zero(self, two_stores, capsys):
        old, new = two_stores
        assert main(["report", "diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "0 regressed" in out
        assert "verdict: OK" in out

    def test_perturbed_store_fails_at_default_threshold(
            self, store_path, perturbed_store, capsys):
        assert main(["report", "diff", str(store_path),
                     str(perturbed_store)]) == 1
        out = capsys.readouterr().out
        assert "1 regressed" in out
        assert "verdict: FAIL" in out

    def test_threshold_flag_tolerates_the_perturbation(
            self, store_path, perturbed_store):
        # The perturbation is 1 register on a 10-register job: 10 % worse.
        assert main(["report", "diff", str(store_path), str(perturbed_store),
                     "--threshold", "0.2"]) == 0

    def test_baseline_flag_is_equivalent(self, store_path, perturbed_store):
        assert main(["report", str(perturbed_store),
                     "--baseline", str(store_path)]) == 1
        assert main(["report", str(store_path),
                     "--baseline", str(store_path)]) == 0

    def test_diff_json_payload(self, store_path, perturbed_store, tmp_path):
        json_path = tmp_path / "diff.json"
        assert main(["report", "diff", str(store_path), str(perturbed_store),
                     "--json", str(json_path)]) == 1
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["data"]["kind"] == "diff"
        assert payload["data"]["num_regressed"] == 1
        assert payload["data"]["exit_code"] == 1

    def test_diff_needs_exactly_two_inputs(self, store_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "diff", str(store_path)])
        assert excinfo.value.code == 2

    def test_diff_and_baseline_are_exclusive(self, two_stores):
        old, new = two_stores
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "diff", str(old), str(new),
                  "--baseline", str(old)])
        assert excinfo.value.code == 2

    def test_diff_rejects_multiple_metrics(self, two_stores):
        old, new = two_stores
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "diff", str(old), str(new),
                  "--metric", "iterations,evaluations"])
        assert excinfo.value.code == 2

    def test_stores_of_different_specs_join_nothing_and_fail(
            self, store_path, tmp_path, capsys):
        # Zero joined jobs means the diff verified nothing; that must not
        # read as a green CI gate.
        other = tmp_path / "other.jsonl"
        write_store(other, make_spec(subgraph_counts=[16]))
        assert main(["report", "diff", str(store_path), str(other)]) == 1
        out = capsys.readouterr().out
        assert "0 jobs joined" in out
        assert "4 jobs only in baseline" in out
        assert "2 jobs only in candidate" in out
        assert "verdict: FAIL" in out

    def test_same_basename_inputs_stay_distinguishable(self, tmp_path, spec,
                                                       capsys):
        for branch in ("main", "pr"):
            (tmp_path / branch).mkdir()
            write_store(tmp_path / branch / "sweep.jsonl", spec)
        assert main(["report", str(tmp_path / "main" / "sweep.jsonl"),
                     str(tmp_path / "pr" / "sweep.jsonl"),
                     "--group-by", "source"]) == 0
        out = capsys.readouterr().out
        assert "8 rows in 2 groups" in out
