"""Tests for the unified report frame and its loaders."""

import json

import pytest

from repro.report.frame import (ReportFrame, ReportRow, load_any,
                                load_experiment_payload, load_frames,
                                load_run_store, metric_spec, resolve_axis)
from tests.report.conftest import make_spec, synthetic_result, write_store


class TestRunStoreLoading:
    def test_rows_carry_axes_and_metrics(self, store_path, spec):
        frame = load_run_store(store_path)
        assert len(frame.rows) == len(spec.jobs())
        row = frame.rows[0]
        assert row.axes["design"] == "rrot"
        assert row.axes["extraction"] in ("fanout", "delay")
        assert row.axes["subgraphs_per_iteration"] in (4, 8)
        assert row.axes["backend"] == "estimator"
        assert row.metrics["registers_initial"] >= 20
        assert row.metrics["runtime_s"] == 0.25
        # Derived metrics appear when their inputs do.
        assert 0 < row.metrics["register_ratio"] < 1
        assert row.metrics["register_reduction"] == pytest.approx(
            1 - row.metrics["register_ratio"])

    def test_rows_sorted_by_job_id(self, store_path):
        frame = load_run_store(store_path)
        ids = [row.job_id for row in frame.rows]
        assert ids == sorted(ids)

    def test_source_defaults_to_file_name(self, store_path):
        assert load_run_store(store_path).rows[0].source == "store.jsonl"
        assert load_run_store(store_path, source="x").rows[0].source == "x"

    def test_torn_trailing_line_is_tolerated_and_file_untouched(
            self, store_path):
        original = store_path.read_bytes()
        store_path.write_bytes(original + b'{"kind": "job", "job_')
        frame = load_run_store(store_path)
        assert len(frame.rows) == 4
        # Read-only analysis must not repair (rewrite) the store.
        assert store_path.read_bytes().endswith(b'{"kind": "job", "job_')

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run_store(tmp_path / "nope.jsonl")

    def test_headerless_file_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "job", "job_id": "x"}\n')
        with pytest.raises(ValueError, match="no campaign header"):
            load_run_store(path)


class TestPayloadLoading:
    def test_campaign_payload(self, tmp_path, spec, store_path):
        from repro.campaign.store import RunStore

        store = RunStore.load(store_path)
        payload = {"schema": 3, "experiment": "campaign", "quick": True,
                   "jobs": 1, "solver": "full", "elapsed_s": 1.0,
                   "data": store.final_payload(spec)}
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(payload))

        frame = load_experiment_payload(path)
        assert len(frame.rows) == len(spec.jobs())
        assert {row.job_id for row in frame.rows} == store.completed
        # Payload jobs carry no wall-clock runtime.
        assert all("runtime_s" not in row.metrics for row in frame.rows)
        assert frame.rows[0].axes["extraction"] in ("fanout", "delay")

    def test_table1_payload_including_schema1(self, tmp_path):
        # Schema-1 payloads predate solver/evaluations/phase columns.
        row = {"benchmark": "rrot", "clock_period_ps": 2000.0,
               "sdc_slack_ps": 100.0, "sdc_stages": 4, "sdc_registers": 40,
               "sdc_time_s": 0.1, "isdc_slack_ps": 60.0, "isdc_stages": 3,
               "isdc_registers": 30, "isdc_time_s": 1.5,
               "isdc_iterations": 5}
        payload = {"schema": 1, "experiment": "table1", "quick": False,
                   "jobs": 1, "elapsed_s": 2.0, "data": {"rows": [row]}}
        path = tmp_path / "table1.json"
        path.write_text(json.dumps(payload))

        frame = load_experiment_payload(path)
        (loaded,) = frame.rows
        assert loaded.axes["design"] == "rrot"
        assert "solver" not in loaded.axes
        assert loaded.metrics["registers_initial"] == 40.0
        assert loaded.metrics["registers_final"] == 30.0
        assert loaded.metrics["iterations"] == 5.0
        assert "evaluations" not in loaded.metrics
        assert loaded.metrics["register_ratio"] == pytest.approx(0.75)

    def test_table1_job_ids_stable_across_payloads(self, tmp_path):
        def write(name, registers):
            row = {"benchmark": "crc32", "clock_period_ps": 1500.0,
                   "isdc_registers": registers}
            path = tmp_path / name
            path.write_text(json.dumps({"schema": 4, "experiment": "table1",
                                        "data": {"rows": [row]}}))
            return path

        first = load_experiment_payload(write("a.json", 10))
        second = load_experiment_payload(write("b.json", 99))
        assert first.rows[0].job_id == second.rows[0].job_id

    def test_figure_payload_rejected(self, tmp_path):
        path = tmp_path / "fig5.json"
        path.write_text(json.dumps({"schema": 4, "experiment": "fig5",
                                    "data": {"curves": []}}))
        with pytest.raises(ValueError, match="fig5"):
            load_experiment_payload(path)

    def test_non_payload_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"whatever": 1}))
        with pytest.raises(ValueError, match="not a runner --json payload"):
            load_experiment_payload(path)


class TestArtifactStoreLoading:
    def test_unified_store_loads_like_a_run_store(self, store_path):
        from repro.report.frame import load_artifact_store

        run_frame = load_run_store(store_path, source="s")
        store_frame = load_artifact_store(store_path, source="s")
        assert store_frame.rows == run_frame.rows

    def test_mixed_store_adds_payload_rows_and_skips_other_kinds(
            self, tmp_path, store_path):
        from repro.report.frame import load_artifact_store
        from repro.store import ArtifactStore, StoreRecord, payload_record

        store = ArtifactStore(store_path).open_for_append()
        num_campaign_rows = len(load_run_store(store_path).rows)
        store.put(StoreRecord(kind="synth-eval", key="e1", schema=1,
                              body={"backend": "x", "fingerprint": "fp"}))
        store.put(payload_record(
            {"schema": 6, "experiment": "table1",
             "data": {"rows": [{"benchmark": "crc32",
                                "clock_period_ps": 1500.0,
                                "isdc_registers": 12}]}}))
        store.put(payload_record(
            {"schema": 6, "experiment": "fig5", "data": {"curves": []}}))
        frame = load_artifact_store(store_path)
        assert len(frame.rows) == num_campaign_rows + 1
        table1_rows = [row for row in frame.rows
                       if row.axes.get("design") == "crc32"]
        assert table1_rows[0].metrics["registers_final"] == 12.0

    def test_legacy_run_store_still_loads_through_load_any(self, tmp_path,
                                                           spec):
        legacy = tmp_path / "legacy.jsonl"
        jobs = spec.jobs()
        lines = [json.dumps({"kind": "header", "schema": 1,
                             "name": spec.name,
                             "fingerprint": spec.fingerprint(),
                             "num_jobs": len(jobs),
                             "spec": spec.to_dict()})]
        from tests.report.conftest import synthetic_result

        for job in jobs:
            lines.append(json.dumps({"kind": "job", "job_id": job.job_id,
                                     "design": job.design,
                                     "result": synthetic_result(job),
                                     "runtime_s": 0.25}))
        legacy.write_text("\n".join(lines) + "\n")
        before = legacy.read_bytes()
        frame = load_any(legacy)
        assert len(frame.rows) == len(jobs)
        assert frame.rows[0].axes["design"] == "rrot"
        assert legacy.read_bytes() == before  # analysis never migrates


class TestSniffingAndMerging:
    def test_load_any_detects_both_kinds(self, tmp_path, store_path):
        payload_path = tmp_path / "t1.json"
        payload_path.write_text(json.dumps(
            {"schema": 4, "experiment": "table1",
             "data": {"rows": [{"benchmark": "rrot",
                                "clock_period_ps": 2000.0,
                                "isdc_registers": 30}]}}))
        assert len(load_any(store_path).rows) == 4
        assert len(load_any(payload_path).rows) == 1

    def test_load_frames_concatenates(self, tmp_path, store_path):
        other = tmp_path / "other.jsonl"
        write_store(other, make_spec(name="other", subgraph_counts=[16]))
        frame = load_frames([store_path, other])
        assert len(frame.rows) == 6
        assert {row.source for row in frame.rows} == \
            {"store.jsonl", "other.jsonl"}

    def test_by_job_id_first_occurrence_wins(self):
        a = ReportRow("j1", "a", {}, {"iterations": 1.0})
        b = ReportRow("j1", "b", {}, {"iterations": 2.0})
        assert ReportFrame([a, b]).by_job_id()["j1"].source == "a"


class TestNameResolution:
    def test_axis_aliases(self):
        assert resolve_axis("m") == "subgraphs_per_iteration"
        assert resolve_axis("clock") == "clock_period_ps"
        assert resolve_axis("design") == "design"

    def test_unknown_axis_names_known_ones(self):
        with pytest.raises(ValueError, match="known axes.*design"):
            resolve_axis("flavour")

    def test_unknown_metric_names_known_ones(self):
        with pytest.raises(ValueError, match="known metrics.*registers_final"):
            metric_spec("bogus")

    def test_metric_directions(self):
        assert not metric_spec("registers_final").higher_is_better
        assert metric_spec("register_reduction").higher_is_better
