"""Tests for axis grouping and metric reducers."""

import pytest

from repro.report.aggregate import DEFAULT_REDUCERS, REDUCERS, aggregate
from repro.report.frame import ReportFrame, ReportRow, load_run_store


def _frame(rows):
    return ReportFrame([
        ReportRow(f"job{i}", "test", axes, metrics)
        for i, (axes, metrics) in enumerate(rows)])


class TestReducers:
    def test_geomean_mean_percentiles(self):
        frame = _frame([({"design": "x"}, {"iterations": float(v)})
                        for v in (2, 8, 8, 8)])
        report = aggregate(frame, group_by=("design",),
                           metrics=("iterations",),
                           reducers=("count", "geomean", "mean", "p50",
                                     "p95", "min", "max", "sum"))
        (group,) = report.groups
        values = group.values["iterations"]
        assert values["count"] == 4
        assert values["geomean"] == pytest.approx((2 * 8 * 8 * 8) ** 0.25)
        assert values["mean"] == pytest.approx(6.5)
        assert values["p50"] == pytest.approx(8.0)
        assert values["p95"] == pytest.approx(8.0)
        assert values["min"] == 2.0 and values["max"] == 8.0
        assert values["sum"] == 26.0

    def test_p95_interpolates(self):
        frame = _frame([({}, {"iterations": float(v)})
                        for v in range(1, 101)])
        report = aggregate(frame, group_by=(), metrics=("iterations",),
                           reducers=("p95",))
        assert report.groups[0].values["iterations"]["p95"] == \
            pytest.approx(95.05)

    def test_geomean_over_zeros_yields_none_not_nan(self):
        frame = _frame([({}, {"evaluations": 0.0}),
                        ({}, {"evaluations": 5.0})])
        report = aggregate(frame, group_by=(), metrics=("evaluations",),
                           reducers=("geomean", "mean"))
        values = report.groups[0].values["evaluations"]
        assert values["geomean"] is None
        assert values["mean"] == pytest.approx(2.5)

    def test_metric_absent_from_all_rows_yields_none(self):
        frame = _frame([({}, {"iterations": 1.0})])
        report = aggregate(frame, group_by=(), metrics=("runtime_s",))
        values = report.groups[0].values["runtime_s"]
        assert values["count"] == 0  # the sample size is a fact, not n/a
        assert all(value is None for name, value in values.items()
                   if name != "count")

    def test_metric_count_tracks_rows_carrying_the_metric(self):
        frame = _frame([({}, {"iterations": 1.0, "runtime_s": 0.5}),
                        ({}, {"iterations": 2.0})])
        report = aggregate(frame, group_by=(), metrics=("runtime_s",),
                           reducers=("count", "mean"))
        (group,) = report.groups
        assert group.count == 2                       # rows in the group
        assert group.values["runtime_s"]["count"] == 1  # rows with the metric


class TestGrouping:
    def test_groups_are_sorted_and_counted(self):
        frame = _frame([
            ({"design": "b", "extraction": "fanout"}, {"iterations": 1.0}),
            ({"design": "a", "extraction": "delay"}, {"iterations": 2.0}),
            ({"design": "a", "extraction": "delay"}, {"iterations": 4.0}),
        ])
        report = aggregate(frame, group_by=("design", "extraction"),
                           metrics=("iterations",), reducers=("mean",))
        assert [group.key for group in report.groups] == \
            [("a", "delay"), ("b", "fanout")]
        assert [group.count for group in report.groups] == [2, 1]
        assert report.num_rows == 3

    def test_alias_m_groups_by_subgraph_count(self, store_path):
        frame = load_run_store(store_path)
        report = aggregate(frame, group_by=("m",), metrics=("iterations",),
                           reducers=("count",))
        assert report.group_by == ("subgraphs_per_iteration",)
        assert [group.key for group in report.groups] == [(4,), (8,)]
        assert all(group.count == 2 for group in report.groups)

    def test_source_axis_separates_inputs(self):
        frame = ReportFrame([
            ReportRow("j1", "old.jsonl", {}, {"iterations": 1.0}),
            ReportRow("j1", "new.jsonl", {}, {"iterations": 2.0}),
        ])
        report = aggregate(frame, group_by=("source",),
                           metrics=("iterations",), reducers=("mean",))
        assert [group.key for group in report.groups] == \
            [("new.jsonl",), ("old.jsonl",)]

    def test_rows_missing_an_axis_group_under_none(self):
        frame = _frame([({"design": "x", "solver": "full"},
                         {"iterations": 1.0}),
                        ({"design": "x"}, {"iterations": 3.0})])
        report = aggregate(frame, group_by=("solver",),
                           metrics=("iterations",), reducers=("mean",))
        assert {group.key for group in report.groups} == {(None,), ("full",)}


class TestValidation:
    def test_unknown_reducer_rejected(self):
        with pytest.raises(ValueError, match="unknown reducer"):
            aggregate(ReportFrame(), reducers=("median",))

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            aggregate(ReportFrame(), metrics=("registers",))

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown axis"):
            aggregate(ReportFrame(), group_by=("designs",))

    def test_default_reducers_are_known(self):
        assert set(DEFAULT_REDUCERS) <= set(REDUCERS)

    def test_payload_shape(self):
        frame = _frame([({"design": "x"}, {"iterations": 2.0})])
        payload = aggregate(frame, group_by=("design",),
                            metrics=("iterations",),
                            reducers=("mean",)).to_payload()
        assert payload["kind"] == "summary"
        assert payload["groups"] == [
            {"key": {"design": "x"}, "count": 1,
             "values": {"iterations": {"mean": 2.0}}}]
