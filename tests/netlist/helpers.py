"""Shared helpers for gate-level tests: lower a graph and simulate it."""

from __future__ import annotations

from repro.ir.graph import DataflowGraph
from repro.ir.interpreter import evaluate_graph
from repro.netlist.lowering import LoweringResult, lower_graph
from repro.netlist.netlist import Netlist


def bits_to_int(values: dict[int, int], bits: list[int]) -> int:
    """Assemble an integer from simulated bit values (LSB-first gate ids)."""
    return sum(values[gate_id] << index for index, gate_id in enumerate(bits))


def int_to_bits(value: int, bits: list[int]) -> dict[int, int]:
    """Spread an integer over primary-input gate ids (LSB-first)."""
    return {gate_id: (value >> index) & 1 for index, gate_id in enumerate(bits)}


def simulate_lowering(lowered: LoweringResult, inputs: dict[int, int],
                      netlist: Netlist | None = None) -> dict[int, int]:
    """Simulate a lowered (sub)graph for IR-node-id keyed integer inputs.

    Args:
        lowered: the lowering result (provides the input/output bit maps).
        inputs: IR node id -> integer value for every boundary input.
        netlist: optionally simulate a different netlist with the same
            primary-input gate ids (used to check optimised netlists).

    Returns:
        IR node id -> integer value for every output of the lowering.
    """
    target = netlist if netlist is not None else lowered.netlist
    input_values: dict[int, int] = {}
    for node_id, bits in lowered.input_bits.items():
        input_values.update(int_to_bits(inputs[node_id], bits))
    simulated = target.simulate(input_values)
    return {node_id: bits_to_int(simulated, bits)
            for node_id, bits in lowered.output_bits.items()}


def check_against_interpreter(graph: DataflowGraph, inputs: dict[str, int]) -> None:
    """Assert that lowering + gate simulation matches the IR interpreter."""
    reference = evaluate_graph(graph, inputs)
    lowered = lower_graph(graph)
    id_inputs = {node.node_id: reference[node.node_id]
                 for node in graph.parameters()}
    outputs = simulate_lowering(lowered, id_inputs)
    for node_id, value in outputs.items():
        assert value == reference[node_id], (
            f"{graph.name}:{graph.node(node_id).name}: netlist={value} "
            f"interpreter={reference[node_id]}")
