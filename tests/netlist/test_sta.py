"""Tests for static timing analysis."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.netlist.gates import GateKind
from repro.netlist.lowering import lower_graph
from repro.netlist.netlist import Netlist
from repro.netlist.sta import StaticTimingAnalysis


@pytest.fixture
def sta(library):
    return StaticTimingAnalysis(library)


class TestArrivalTimes:
    def test_chain_delay_adds_up(self, sta, library):
        netlist = Netlist("chain")
        a = netlist.add_input("a")
        g1 = netlist.add_gate(GateKind.INV, (a,))
        g2 = netlist.add_gate(GateKind.INV, (g1,))
        g3 = netlist.add_gate(GateKind.INV, (g2,))
        netlist.mark_output(g3)
        result = sta.run(netlist)
        assert result.critical_path_delay_ps == pytest.approx(3 * library.delay("inv"))
        assert result.critical_path == (a, g1, g2, g3)

    def test_worst_path_selected(self, sta, library):
        netlist = Netlist("branch")
        a = netlist.add_input("a")
        slow = netlist.add_gate(GateKind.XOR2, (a, a))
        fast = netlist.add_gate(GateKind.INV, (a,))
        join = netlist.add_gate(GateKind.AND2, (slow, fast))
        netlist.mark_output(join)
        result = sta.run(netlist)
        expected = library.delay("xor2") + library.delay("and2")
        assert result.critical_path_delay_ps == pytest.approx(expected)
        assert slow in result.critical_path

    def test_inputs_and_ties_have_zero_arrival(self, sta):
        netlist = Netlist("sources")
        a = netlist.add_input("a")
        tie = netlist.add_constant(1)
        result = sta.run(netlist, endpoints=[a, tie])
        assert result.critical_path_delay_ps == 0.0

    def test_endpoints_restrict_analysis(self, sta, library):
        netlist = Netlist("endpoints")
        a = netlist.add_input("a")
        g1 = netlist.add_gate(GateKind.INV, (a,))
        g2 = netlist.add_gate(GateKind.XOR2, (g1, a))
        netlist.mark_output(g2)
        restricted = sta.run(netlist, endpoints=[g1])
        assert restricted.critical_path_delay_ps == pytest.approx(library.delay("inv"))

    def test_empty_netlist(self, sta):
        assert sta.run(Netlist("empty")).critical_path_delay_ps == 0.0

    def test_path_delay_helper(self, sta, library):
        netlist = Netlist("helper")
        a = netlist.add_input("a")
        g1 = netlist.add_gate(GateKind.MAJ3, (a, a, a))
        assert sta.path_delay(netlist, [a, g1]) == pytest.approx(library.delay("maj3"))


class TestLoweredDesignTiming:
    def test_adder_delay_scales_with_width(self, sta):
        def adder_delay(width):
            builder = GraphBuilder(f"adder{width}")
            x = builder.param("x", width)
            y = builder.param("y", width)
            builder.output(builder.add(x, y))
            return sta.run(lower_graph(builder.graph).netlist).critical_path_delay_ps

        assert adder_delay(8) < adder_delay(16) < adder_delay(32)

    def test_chained_adders_are_subadditive(self, sta):
        """The key physical effect ISDC exploits: carry chains overlap."""
        builder = GraphBuilder("chained")
        x = builder.param("x", 16)
        y = builder.param("y", 16)
        z = builder.param("z", 16)
        s1 = builder.add(x, y)
        s2 = builder.add(s1, z)
        builder.output(s2)
        chained = sta.run(lower_graph(builder.graph).netlist).critical_path_delay_ps

        single = GraphBuilder("single")
        a = single.param("a", 16)
        b = single.param("b", 16)
        single.output(single.add(a, b))
        one = sta.run(lower_graph(single.graph).netlist).critical_path_delay_ps

        assert chained < 2 * one
        assert chained > one


class _CountingLibrary:
    """Wraps a TechLibrary and counts delay lookups per cell."""

    def __init__(self, inner):
        self._inner = inner
        self.delay_calls: dict[str, int] = {}

    def delay(self, cell: str) -> float:
        self.delay_calls[cell] = self.delay_calls.get(cell, 0) + 1
        return self._inner.delay(cell)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestKindDelayTable:
    def test_library_queried_once_per_kind(self, library):
        counting = _CountingLibrary(library)
        sta = StaticTimingAnalysis(counting)
        assert all(count == 1 for count in counting.delay_calls.values())
        baseline = dict(counting.delay_calls)

        netlist = Netlist("table")
        a = netlist.add_input("a")
        cursor = a
        for _ in range(10):
            cursor = netlist.add_gate(GateKind.INV, (cursor,))
        netlist.mark_output(cursor)
        sta.run(netlist)
        sta.run(netlist)
        # Ten INV gates over two runs: still the single construction-time
        # library lookup per kind.
        assert counting.delay_calls == baseline

    def test_gate_delay_matches_library(self, library):
        sta = StaticTimingAnalysis(library)
        for kind in GateKind:
            if kind.cell_name is None:
                assert sta.gate_delay(kind) == 0.0
            else:
                assert sta.gate_delay(kind) == library.delay(kind.cell_name)

    def test_path_delay_uses_table(self, sta, library):
        netlist = Netlist("pd")
        a = netlist.add_input("a")
        g1 = netlist.add_gate(GateKind.INV, (a,))
        g2 = netlist.add_gate(GateKind.AND2, (g1, a))
        assert sta.path_delay(netlist, [a, g1, g2]) == pytest.approx(
            library.delay("inv") + library.delay("and2"))
