"""Tests for the Netlist container."""

import pytest

from repro.netlist.gates import GateKind
from repro.netlist.netlist import Netlist


@pytest.fixture
def xor_netlist():
    """XOR built from NAND gates, for structural tests."""
    netlist = Netlist("xor_from_nands")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    nand_ab = netlist.add_gate(GateKind.NAND2, (a, b))
    nand_a = netlist.add_gate(GateKind.NAND2, (a, nand_ab))
    nand_b = netlist.add_gate(GateKind.NAND2, (b, nand_ab))
    result = netlist.add_gate(GateKind.NAND2, (nand_a, nand_b))
    netlist.mark_output(result)
    return netlist, (a, b, result)


class TestConstruction:
    def test_counts(self, xor_netlist):
        netlist, _ = xor_netlist
        assert len(netlist) == 6
        assert netlist.num_logic_gates() == 4
        assert len(netlist.inputs()) == 2
        assert len(netlist.outputs()) == 1

    def test_wrong_input_count_rejected(self):
        netlist = Netlist()
        a = netlist.add_input()
        with pytest.raises(ValueError):
            netlist.add_gate(GateKind.AND2, (a,))

    def test_unknown_driver_rejected(self):
        netlist = Netlist()
        with pytest.raises(KeyError):
            netlist.add_gate(GateKind.INV, (7,))

    def test_mark_output_unknown_gate_rejected(self):
        netlist = Netlist()
        with pytest.raises(KeyError):
            netlist.mark_output(3)

    def test_mark_output_adds_one_port_per_call(self, xor_netlist):
        netlist, (_, _, result) = xor_netlist
        netlist.mark_output(result)
        assert netlist.outputs().count(result) == 2


class TestAnalysis:
    def test_topological_order_respects_edges(self, xor_netlist):
        netlist, _ = xor_netlist
        order = netlist.topological_order()
        position = {gid: i for i, gid in enumerate(order)}
        for gate in netlist.gates():
            for driver in gate.inputs:
                assert position[driver] < position[gate.gate_id]

    def test_fanout(self, xor_netlist):
        netlist, (a, _, _) = xor_netlist
        assert len(netlist.fanout(a)) == 2

    def test_area_positive(self, xor_netlist, library):
        netlist, _ = xor_netlist
        assert netlist.area(library) == pytest.approx(4 * library.area("nand2"))

    def test_copy_is_deep(self, xor_netlist):
        netlist, _ = xor_netlist
        clone = netlist.copy()
        clone.add_input("extra")
        assert len(clone) == len(netlist) + 1


class TestSimulation:
    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_xor_truth_table(self, xor_netlist, a, b):
        netlist, (in_a, in_b, result) = xor_netlist
        values = netlist.simulate({in_a: a, in_b: b})
        assert values[result] == a ^ b

    def test_every_gate_function(self):
        netlist = Netlist()
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        c = netlist.add_input("c")
        gates = {
            GateKind.INV: netlist.add_gate(GateKind.INV, (a,)),
            GateKind.BUF: netlist.add_gate(GateKind.BUF, (a,)),
            GateKind.AND2: netlist.add_gate(GateKind.AND2, (a, b)),
            GateKind.OR2: netlist.add_gate(GateKind.OR2, (a, b)),
            GateKind.NAND2: netlist.add_gate(GateKind.NAND2, (a, b)),
            GateKind.NOR2: netlist.add_gate(GateKind.NOR2, (a, b)),
            GateKind.XOR2: netlist.add_gate(GateKind.XOR2, (a, b)),
            GateKind.XNOR2: netlist.add_gate(GateKind.XNOR2, (a, b)),
            GateKind.ANDN2: netlist.add_gate(GateKind.ANDN2, (a, b)),
            GateKind.MUX2: netlist.add_gate(GateKind.MUX2, (a, b, c)),
            GateKind.MAJ3: netlist.add_gate(GateKind.MAJ3, (a, b, c)),
        }
        for va in (0, 1):
            for vb in (0, 1):
                for vc in (0, 1):
                    values = netlist.simulate({a: va, b: vb, c: vc})
                    assert values[gates[GateKind.INV]] == 1 - va
                    assert values[gates[GateKind.BUF]] == va
                    assert values[gates[GateKind.AND2]] == (va & vb)
                    assert values[gates[GateKind.OR2]] == (va | vb)
                    assert values[gates[GateKind.NAND2]] == 1 - (va & vb)
                    assert values[gates[GateKind.NOR2]] == 1 - (va | vb)
                    assert values[gates[GateKind.XOR2]] == va ^ vb
                    assert values[gates[GateKind.XNOR2]] == 1 - (va ^ vb)
                    assert values[gates[GateKind.ANDN2]] == va & (1 - vb)
                    assert values[gates[GateKind.MUX2]] == (vb if va else vc)
                    assert values[gates[GateKind.MAJ3]] == (1 if va + vb + vc >= 2 else 0)


class TestKindCodeArrays:
    def test_arrays_match_gate_kinds(self):
        from repro.netlist.gates import KIND_CODES

        netlist = Netlist("codes")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.add_gate(GateKind.AND2, (a, b))
        netlist.add_gate(GateKind.XOR2, (a, b))
        ids, codes = netlist.kind_code_arrays()
        assert ids.tolist() == netlist.gate_ids()
        assert codes.tolist() == [KIND_CODES[netlist.gate(g).kind]
                                  for g in ids.tolist()]

    def test_cache_follows_structural_edits(self):
        netlist = Netlist("codes")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        ids_before, codes_before = netlist.kind_code_arrays()
        ids_again, codes_again = netlist.kind_code_arrays()
        assert ids_again is ids_before and codes_again is codes_before
        gate = netlist.add_gate(GateKind.OR2, (a, b))
        ids_after, _codes_after = netlist.kind_code_arrays()
        assert ids_after is not ids_before
        assert ids_after.tolist() == [a, b, gate]
