"""Tests for the logic optimiser: functional equivalence + quality effects."""

import random

import pytest

from repro.ir.builder import GraphBuilder
from repro.netlist.gates import GateKind
from repro.netlist.lowering import lower_graph
from repro.netlist.netlist import Netlist
from repro.netlist.optimizer import LogicOptimizer
from repro.netlist.sta import StaticTimingAnalysis

from tests.netlist.helpers import simulate_lowering

_RNG = random.Random(7)


@pytest.fixture
def optimizer(library):
    return LogicOptimizer(library)


class TestLocalRewrites:
    def test_constant_folding(self, optimizer):
        netlist = Netlist("fold")
        one = netlist.add_constant(1)
        zero = netlist.add_constant(0)
        result = netlist.add_gate(GateKind.AND2, (one, zero))
        netlist.mark_output(result)
        optimized, report = optimizer.optimize(netlist)
        assert optimized.num_logic_gates() == 0
        assert report.gates_after == 0

    def test_and_with_constant_one_simplifies(self, optimizer):
        netlist = Netlist("identity")
        a = netlist.add_input("a")
        one = netlist.add_constant(1)
        result = netlist.add_gate(GateKind.AND2, (a, one))
        netlist.mark_output(result)
        optimized, _ = optimizer.optimize(netlist)
        assert optimized.num_logic_gates() == 0

    def test_double_inverter_removed(self, optimizer):
        netlist = Netlist("double_inv")
        a = netlist.add_input("a")
        inv1 = netlist.add_gate(GateKind.INV, (a,))
        inv2 = netlist.add_gate(GateKind.INV, (inv1,))
        final = netlist.add_gate(GateKind.AND2, (inv2, a))
        netlist.mark_output(final)
        optimized, _ = optimizer.optimize(netlist)
        assert optimized.num_logic_gates() <= 1

    def test_common_subexpression_merged(self, optimizer):
        netlist = Netlist("cse")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        x1 = netlist.add_gate(GateKind.XOR2, (a, b))
        x2 = netlist.add_gate(GateKind.XOR2, (b, a))  # same function
        joined = netlist.add_gate(GateKind.AND2, (x1, x2))
        netlist.mark_output(joined)
        optimized, _ = optimizer.optimize(netlist)
        # x1/x2 merge, then AND(x, x) -> x: a single XOR remains.
        assert optimized.num_logic_gates() == 1

    def test_mux_with_constant_select(self, optimizer):
        netlist = Netlist("mux_const")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        one = netlist.add_constant(1)
        picked = netlist.add_gate(GateKind.MUX2, (one, a, b))
        netlist.mark_output(picked)
        optimized, _ = optimizer.optimize(netlist)
        assert optimized.num_logic_gates() == 0

    def test_dead_logic_removed(self, optimizer):
        netlist = Netlist("dce")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        live = netlist.add_gate(GateKind.AND2, (a, b))
        netlist.add_gate(GateKind.XOR2, (a, b))  # dead
        netlist.mark_output(live)
        optimized, _ = optimizer.optimize(netlist)
        assert optimized.num_logic_gates() == 1


class TestBalancing:
    def test_linear_chain_becomes_logarithmic(self, optimizer, library):
        netlist = Netlist("chain")
        inputs = [netlist.add_input(f"i{i}") for i in range(16)]
        result = inputs[0]
        for gate_input in inputs[1:]:
            result = netlist.add_gate(GateKind.XOR2, (result, gate_input))
        netlist.mark_output(result)
        sta = StaticTimingAnalysis(library)
        before = sta.run(netlist).critical_path_delay_ps
        optimized, report = optimizer.optimize(netlist)
        after = sta.run(optimized).critical_path_delay_ps
        assert after <= before / 2
        assert report.delay_after_ps <= report.delay_before_ps

    def test_balancing_preserves_function(self, optimizer):
        netlist = Netlist("balance_equiv")
        inputs = [netlist.add_input(f"i{i}") for i in range(10)]
        result = inputs[0]
        for gate_input in inputs[1:]:
            result = netlist.add_gate(GateKind.AND2, (result, gate_input))
        netlist.mark_output(result)
        optimized, _ = optimizer.optimize(netlist)
        for _ in range(16):
            bits = [_RNG.randint(0, 1) for _ in netlist.inputs()]
            original_value = netlist.simulate(
                dict(zip(netlist.inputs(), bits)))[netlist.outputs()[0]]
            optimized_value = optimized.simulate(
                dict(zip(optimized.inputs(), bits)))[optimized.outputs()[0]]
            assert original_value == optimized_value


class TestEquivalenceOnLoweredDesigns:
    @pytest.mark.parametrize("builder_method,width", [
        ("add", 8), ("sub", 8), ("mul", 6), ("xor", 8), ("ult", 8),
    ])
    def test_optimized_netlist_equivalent(self, optimizer, builder_method, width):
        builder = GraphBuilder(f"equiv_{builder_method}")
        x = builder.param("x", width)
        y = builder.param("y", width)
        builder.output(getattr(builder, builder_method)(x, y))
        lowered = lower_graph(builder.graph)
        original = lowered.netlist
        optimized, report = optimizer.optimize(original)
        assert report.gates_after <= report.gates_before
        # Primary inputs and outputs are preserved positionally by the
        # optimiser's rebuild, so equivalence is checked pin-by-pin.
        original_inputs = original.inputs()
        optimized_inputs = optimized.inputs()
        original_outputs = original.outputs()
        optimized_outputs = optimized.outputs()
        assert len(original_inputs) == len(optimized_inputs)
        assert len(original_outputs) == len(optimized_outputs)
        for _ in range(10):
            bits = [_RNG.randint(0, 1) for _ in original_inputs]
            original_values = original.simulate(dict(zip(original_inputs, bits)))
            optimized_values = optimized.simulate(dict(zip(optimized_inputs, bits)))
            for original_gate, optimized_gate in zip(original_outputs,
                                                     optimized_outputs):
                assert original_values[original_gate] == optimized_values[optimized_gate]

    def test_report_reduction_fraction(self, optimizer):
        builder = GraphBuilder("report")
        x = builder.param("x", 16)
        y = builder.param("y", 16)
        builder.output(builder.add(builder.add(x, y), x))
        _, report = optimizer.optimize(lower_graph(builder.graph).netlist)
        assert 0.0 <= report.gate_reduction < 1.0
        assert report.passes[0] == "strash"
