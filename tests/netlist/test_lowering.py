"""Functional correctness of word-level-to-gate lowering.

Every operation is lowered, simulated at the bit level, and compared against
the reference IR interpreter on a set of directed and random inputs.
"""

import random

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.ops import OpKind
from repro.netlist.lowering import lower_graph, lower_subgraph

from tests.netlist.helpers import check_against_interpreter, simulate_lowering

_RNG = random.Random(20240122)


def _binary_graph(kind_method: str, width: int = 8, **kwargs):
    builder = GraphBuilder(f"lower_{kind_method}")
    x = builder.param("x", width)
    y = builder.param("y", width)
    result = getattr(builder, kind_method)(x, y, **kwargs)
    builder.output(result)
    return builder.graph


_BINARY_METHODS = ["add", "sub", "mul", "and_", "or_", "xor", "andn",
                   "eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sgt"]


class TestBinaryOperations:
    @pytest.mark.parametrize("method", _BINARY_METHODS)
    def test_matches_interpreter(self, method):
        graph = _binary_graph(method)
        for _ in range(8):
            inputs = {"x": _RNG.randrange(256), "y": _RNG.randrange(256)}
            check_against_interpreter(graph, inputs)

    @pytest.mark.parametrize("method", ["add", "sub", "mul", "ult"])
    def test_edge_values(self, method):
        graph = _binary_graph(method)
        for x in (0, 1, 127, 128, 255):
            for y in (0, 1, 255):
                check_against_interpreter(graph, {"x": x, "y": y})


class TestUnaryAndMisc:
    def test_not_neg(self):
        builder = GraphBuilder("unary")
        x = builder.param("x", 8)
        builder.output(builder.not_(x))
        builder.output(builder.neg(x))
        for value in (0, 1, 100, 255):
            check_against_interpreter(builder.graph, {"x": value})

    def test_reductions(self):
        builder = GraphBuilder("reduce")
        x = builder.param("x", 8)
        builder.output(builder.and_reduce(x))
        builder.output(builder.or_reduce(x))
        builder.output(builder.xor_reduce(x))
        for value in (0, 1, 0x0F, 0xFF, 0xAA):
            check_against_interpreter(builder.graph, {"x": value})

    def test_select(self):
        builder = GraphBuilder("select")
        c = builder.param("c", 1)
        a = builder.param("a", 8)
        b = builder.param("b", 8)
        builder.output(builder.select(c, a, b))
        for cond in (0, 1):
            check_against_interpreter(builder.graph,
                                      {"c": cond, "a": 0xAB, "b": 0x12})

    def test_bit_manipulation(self):
        builder = GraphBuilder("bits")
        x = builder.param("x", 16)
        builder.output(builder.bit_slice(x, 4, 8))
        builder.output(builder.zero_ext(builder.bit_slice(x, 0, 4), 16))
        builder.output(builder.sign_ext(builder.bit_slice(x, 0, 4), 16))
        builder.output(builder.concat(builder.bit_slice(x, 8, 8),
                                      builder.bit_slice(x, 0, 8)))
        for value in (0, 0xFFFF, 0x1234, 0x8765):
            check_against_interpreter(builder.graph, {"x": value})

    def test_popcount_and_clz(self):
        builder = GraphBuilder("count")
        x = builder.param("x", 8)
        builder.output(builder.popcount(x))
        builder.output(builder.clz(x))
        for value in (0, 1, 2, 0x80, 0xFF, 0x3C):
            check_against_interpreter(builder.graph, {"x": value})

    def test_muladd(self):
        builder = GraphBuilder("muladd")
        a = builder.param("a", 8)
        b = builder.param("b", 8)
        c = builder.param("c", 8)
        builder.output(builder.muladd(a, b, c))
        for _ in range(6):
            check_against_interpreter(builder.graph, {
                "a": _RNG.randrange(256), "b": _RNG.randrange(256),
                "c": _RNG.randrange(256)})

    def test_division(self):
        builder = GraphBuilder("divide")
        a = builder.param("a", 8)
        b = builder.param("b", 8)
        builder.output(builder.udiv(a, b))
        builder.output(builder.umod(a, b))
        for a_value, b_value in ((100, 7), (255, 16), (5, 9), (0, 3), (200, 1)):
            check_against_interpreter(builder.graph, {"a": a_value, "b": b_value})


class TestShifts:
    @pytest.mark.parametrize("method", ["shl", "shrl", "shra", "rotl", "rotr"])
    def test_variable_shifts(self, method):
        builder = GraphBuilder(f"shift_{method}")
        x = builder.param("x", 16)
        amount = builder.param("amount", 4)
        builder.output(getattr(builder, method)(x, amount))
        for value in (0x8001, 0x1234, 0xFFFF):
            for shift in (0, 1, 7, 15):
                check_against_interpreter(builder.graph,
                                          {"x": value, "amount": shift})

    def test_constant_shift_is_wiring(self):
        builder = GraphBuilder("const_shift")
        x = builder.param("x", 16)
        builder.output(builder.shrl_const(x, 3))
        lowered = lower_graph(builder.graph)
        # Pure wiring: no logic gates beyond the tie cells.
        assert lowered.netlist.num_logic_gates() == 0
        check_against_interpreter(builder.graph, {"x": 0xBEEF})

    def test_constant_rotate_matches(self):
        builder = GraphBuilder("const_rot")
        x = builder.param("x", 32)
        builder.output(builder.rotr_const(x, 13))
        for value in (1, 0x80000000, 0xDEADBEEF):
            check_against_interpreter(builder.graph, {"x": value})


class TestSubgraphLowering:
    def test_boundary_inputs_created(self, adder_chain_graph):
        s2 = next(n.node_id for n in adder_chain_graph.nodes() if n.name == "s2")
        s3 = next(n.node_id for n in adder_chain_graph.nodes() if n.name == "s3")
        lowered = lower_subgraph(adder_chain_graph, [s2, s3])
        # s1, z and w are external producers -> primary inputs; x, y are not.
        assert len(lowered.input_bits) == 3
        assert set(lowered.output_bits) == {s3}

    def test_subgraph_functionally_correct(self, adder_chain_graph):
        s1 = next(n.node_id for n in adder_chain_graph.nodes() if n.name == "s1")
        s2 = next(n.node_id for n in adder_chain_graph.nodes() if n.name == "s2")
        lowered = lower_subgraph(adder_chain_graph, [s1, s2])
        x, y, z, _ = [p.node_id for p in adder_chain_graph.parameters()]
        outputs = simulate_lowering(lowered, {x: 1000, y: 2000, z: 3000})
        assert outputs[s2] == (1000 + 2000 + 3000) & 0xFFFF

    def test_external_constants_are_materialised(self):
        builder = GraphBuilder("const_ext")
        x = builder.param("x", 16)
        shifted = builder.shrl_const(x, 4)
        added = builder.add(shifted, x)
        builder.output(added)
        lowered = lower_subgraph(builder.graph, [shifted.node_id])
        # Only x becomes a primary input; the shift amount stays a constant.
        assert list(lowered.input_bits) == [x.node_id]

    def test_mul_gate_count_scales_quadratically(self):
        small = GraphBuilder("m8")
        a = small.param("a", 8)
        b = small.param("b", 8)
        small.output(small.mul(a, b))
        large = GraphBuilder("m16")
        c = large.param("c", 16)
        d = large.param("d", 16)
        large.output(large.mul(c, d))
        gates_small = lower_graph(small.graph).netlist.num_logic_gates()
        gates_large = lower_graph(large.graph).netlist.num_logic_gates()
        assert gates_large > 3 * gates_small
