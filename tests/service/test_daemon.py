"""Daemon-core tests: cache layers, backpressure, fault injection.

No pytest-asyncio in the container, so every test drives its own event
loop with :func:`asyncio.run`.
"""

import asyncio

import pytest

from repro.parallel import close_shared_pool
from repro.service.daemon import SchedulingService, ServiceConfig
from repro.service.protocol import CRASH_DESIGN
from repro.store import ArtifactStore

DESIGN = "rrot"
CLOCK = 2000.0  # feasible for rrot (its min clock is ~1620 ps)


@pytest.fixture(scope="module", autouse=True)
def _shared_pool_cleanup():
    yield
    close_shared_pool()


def _schedule(design=DESIGN, clock=CLOCK, **extra):
    return {"kind": "schedule", "design": design,
            "clock_period_ps": clock, **extra}


async def _started(config):
    service = SchedulingService(config)
    await service.start()
    return service


async def _drained(service, *, timeout_s=60.0):
    """Wait for every in-flight computation to land (or error)."""
    deadline = asyncio.get_running_loop().time() + timeout_s
    while service._inflight:
        assert asyncio.get_running_loop().time() < deadline
        await asyncio.sleep(0.01)


def test_coalescing_then_warm():
    async def scenario():
        service = await _started(ServiceConfig(jobs=1, batch_window_ms=0.0))
        try:
            burst = await asyncio.gather(*(service.handle(_schedule(id=i))
                                           for i in range(3)))
            assert [r["ok"] for r in burst] == [True] * 3
            assert sorted(r["served"] for r in burst) == [
                "coalesced", "coalesced", "cold"]
            # All three answers are the same object's payload.
            assert burst[0]["result"] == burst[1]["result"] == burst[2]["result"]
            assert {r["id"] for r in burst} == {"0", "1", "2"}

            again = await service.handle(_schedule())
            assert again["served"] == "warm"
            assert again["result"] == burst[0]["result"]

            stats = service.stats
            assert (stats.cold_submitted, stats.coalesced,
                    stats.warm_hits) == (1, 2, 1)
        finally:
            await service.stop()
    asyncio.run(scenario())


def test_queue_full_is_a_typed_rejection():
    async def scenario():
        service = await _started(ServiceConfig(jobs=1, queue_limit=1,
                                               max_batch=1,
                                               batch_window_ms=0.0))
        try:
            # Distinct clock periods -> distinct keys, no coalescing.  All
            # three handle() calls enqueue synchronously before the
            # batcher gets a turn, so only the first fits the queue.
            results = await asyncio.gather(
                *(service.handle(_schedule(clock=CLOCK + i, id=i))
                  for i in range(3)))
            by_id = {r["id"]: r for r in results}
            assert by_id["0"]["ok"] is True
            for i in ("1", "2"):
                assert by_id[i]["ok"] is False
                assert by_id[i]["error"] == "overloaded"
            assert service.stats.rejected == 2
            # A rejected request key holds no stale in-flight entry: the
            # same question succeeds once there is room.
            retry = await service.handle(_schedule(clock=CLOCK + 1))
            assert retry["ok"] is True and retry["served"] == "cold"
        finally:
            await service.stop()
    asyncio.run(scenario())


def test_deadline_miss_still_caches_the_result():
    async def scenario():
        service = await _started(ServiceConfig(jobs=1, batch_window_ms=0.0))
        try:
            missed = await service.handle(_schedule(deadline_s=1e-4))
            assert missed["ok"] is False
            assert missed["error"] == "deadline"
            assert service.stats.deadline_misses == 1

            # The shielded computation kept running; once it lands the
            # identical question is a warm hit.
            await _drained(service)
            assert service.stats.cold_done == 1
            warm = await service.handle(_schedule())
            assert warm["ok"] is True and warm["served"] == "warm"
        finally:
            await service.stop()
    asyncio.run(scenario())


def test_worker_crash_fails_the_batch_and_recovers():
    async def scenario():
        service = await _started(ServiceConfig(jobs=1, batch_window_ms=0.0,
                                               allow_crash_probes=True))
        try:
            crash = {"kind": "schedule", "design": CRASH_DESIGN,
                     "clock_period_ps": 1000, "id": "boom"}
            # Both requests enqueue before the batcher runs, so they share
            # the single-worker batch; the crash takes the bystander down
            # with a typed error rather than a hang.
            results = await asyncio.gather(service.handle(crash),
                                           service.handle(_schedule(id="ok")))
            for response in results:
                assert response["ok"] is False
                assert response["error"] == "worker-crash"
            assert service.stats.worker_crashes == 1

            # The pool was replaced: the same innocent request now works,
            # cold (errors are never cached).
            retry = await service.handle(_schedule())
            assert retry["ok"] is True and retry["served"] == "cold"
        finally:
            await service.stop()
    asyncio.run(scenario())


def test_bad_design_is_a_typed_error_and_never_cached():
    async def scenario():
        service = await _started(ServiceConfig(jobs=1, batch_window_ms=0.0))
        try:
            first = await service.handle(_schedule(design="no-such-design"))
            assert first["ok"] is False and first["error"] == "bad-design"
            second = await service.handle(_schedule(design="no-such-design"))
            assert second["ok"] is False and second["error"] == "bad-design"
            assert service.stats.cold_errors == 2  # recomputed, not cached
        finally:
            await service.stop()
    asyncio.run(scenario())


def test_control_requests_and_shutdown():
    async def scenario():
        service = await _started(ServiceConfig(jobs=1))
        try:
            pong = await service.handle({"kind": "ping"})
            assert pong["ok"] is True and pong["result"] == {"pong": True}
            stats = await service.handle({"kind": "stats"})
            assert stats["result"]["requests"] == 2

            closing = await service.handle({"kind": "shutdown"})
            assert closing["result"] == {"closing": True}
            assert service.closing
            refused = await service.handle(_schedule())
            assert refused["ok"] is False
            assert refused["error"] == "shutting-down"
        finally:
            await service.stop()
    asyncio.run(scenario())


def test_warm_restart_from_the_artifact_store(tmp_path):
    store_path = str(tmp_path / "service.jsonl")

    async def first_run():
        service = await _started(ServiceConfig(jobs=1,
                                               store_path=store_path))
        try:
            response = await service.handle(_schedule())
            assert response["served"] == "cold"
            return response
        finally:
            await service.stop()

    async def second_run():
        service = await _started(ServiceConfig(jobs=1,
                                               store_path=store_path))
        try:
            assert service.stats.preloaded == 1
            response = await service.handle(_schedule())
            assert response["served"] == "warm"
            return response
        finally:
            await service.stop()

    cold = asyncio.run(first_run())
    warm = asyncio.run(second_run())
    assert warm["result"] == cold["result"]
    assert warm["key"] == cold["key"]

    records = list(ArtifactStore.load(store_path).kind("service-result"))
    assert len(records) == 1
    assert records[0].key == cold["key"]
    assert records[0].body["result"] == cold["result"]
