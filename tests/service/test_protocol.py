"""Protocol-level unit tests: parsing, normalisation, keys, envelopes."""

import pytest

from repro.service.protocol import (COMPUTE_KINDS, CRASH_DESIGN,
                                    ERROR_BAD_REQUEST, ProtocolError,
                                    ServiceRequest, error_response, normalize,
                                    ok_response, parse_request,
                                    service_result_record, work_item)

_DEFAULTS = dict(resolution_ps=25.0, speculate=4, max_probes=96,
                 latency_weight=1e-3)


def _normalized(raw):
    return normalize(parse_request(raw), **_DEFAULTS)


class TestParse:
    def test_schedule_roundtrip(self):
        request = parse_request({"kind": "schedule", "design": "rrot",
                                 "clock_period_ps": 1500, "id": 7})
        assert request.kind == "schedule"
        assert request.design == "rrot"
        assert request.clock_period_ps == 1500.0
        assert request.client_id == "7"

    def test_control_kinds_take_no_fields(self):
        assert parse_request({"kind": "ping"}).kind == "ping"
        with pytest.raises(ProtocolError, match="does not accept"):
            parse_request({"kind": "ping", "design": "rrot"})

    @pytest.mark.parametrize("raw", [
        "not a dict",
        {"kind": "nope"},
        {"kind": "schedule", "design": "rrot"},            # missing clock
        {"kind": "schedule", "design": "", "clock_period_ps": 1},
        {"kind": "schedule", "design": "r", "clock_period_ps": -5},
        {"kind": "schedule", "design": "r", "clock_period_ps": True},
        {"kind": "schedule", "design": "r", "clock_period_ps": 1,
         "speculate": 4},                                  # knob of min-clock
        {"kind": "min-clock", "design": "r", "clock_period_ps": 1000},
        {"kind": "min-clock", "design": "r", "speculate": 0},
    ])
    def test_rejects_malformed(self, raw):
        with pytest.raises(ProtocolError):
            parse_request(raw)

    def test_min_ii_clock_is_optional(self):
        assert parse_request({"kind": "min-ii",
                              "design": "r"}).clock_period_ps is None


class TestKeys:
    def test_explicit_default_and_omitted_share_a_key(self):
        spelled = _normalized({"kind": "min-clock", "design": "rrot",
                               "resolution_ps": 25.0, "speculate": 4,
                               "max_probes": 96})
        omitted = _normalized({"kind": "min-clock", "design": "rrot"})
        assert spelled.key() == omitted.key()

    def test_id_and_deadline_do_not_perturb_the_key(self):
        plain = _normalized({"kind": "schedule", "design": "rrot",
                             "clock_period_ps": 1500})
        decorated = _normalized({"kind": "schedule", "design": "rrot",
                                 "clock_period_ps": 1500, "id": "x",
                                 "deadline_s": 2.0})
        assert plain.key() == decorated.key()

    def test_different_questions_differ(self):
        keys = {_normalized(raw).key() for raw in (
            {"kind": "schedule", "design": "rrot", "clock_period_ps": 1500},
            {"kind": "schedule", "design": "rrot", "clock_period_ps": 1501},
            {"kind": "schedule", "design": "crc32", "clock_period_ps": 1500},
            {"kind": "min-ii", "design": "rrot", "clock_period_ps": 1500},
            {"kind": "min-clock", "design": "rrot"},
        )}
        assert len(keys) == 5

    def test_crash_design_needs_opt_in(self):
        raw = {"kind": "schedule", "design": CRASH_DESIGN,
               "clock_period_ps": 1000}
        with pytest.raises(ProtocolError, match="fault"):
            _normalized(raw)
        request = normalize(parse_request(raw), allow_crash=True, **_DEFAULTS)
        assert work_item(request)["crash"] is True


class TestEnvelopes:
    def test_ok_response_shape(self):
        request = _normalized({"kind": "schedule", "design": "rrot",
                               "clock_period_ps": 1500, "id": "a"})
        response = ok_response(request, {"feasible": True}, served="warm",
                               latency_s=0.001)
        assert response["ok"] is True
        assert response["served"] == "warm"
        assert response["key"] == request.key()
        assert response["id"] == "a"

    def test_error_response_shape(self):
        response = error_response(ERROR_BAD_REQUEST, "nope", client_id="z")
        assert response == {"ok": False, "error": ERROR_BAD_REQUEST,
                            "message": "nope", "id": "z"}

    def test_store_record_key_is_the_request_key(self):
        request = _normalized({"kind": "schedule", "design": "rrot",
                               "clock_period_ps": 1500})
        record = service_result_record(request, {"feasible": False})
        assert record.kind == "service-result"
        assert record.key == request.key()
        assert record.body["request"] == request.identity()

    def test_compute_kinds_cover_the_worker_surface(self):
        assert set(COMPUTE_KINDS) == {"schedule", "min-clock", "min-ii"}
        for kind in COMPUTE_KINDS:
            assert ServiceRequest(kind=kind, design="d").identity()["kind"] == kind
