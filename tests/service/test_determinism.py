"""Service responses must be deterministic: independent of the worker
count, the batch window, interpreter hash randomisation -- and
byte-identical to the offline answers for the same questions.

The cross-process checks run the daemon in subprocesses (different
``PYTHONHASHSEED`` values and ``jobs`` settings) and compare canonical
JSON of the ``result`` payloads, mirroring
``tests/isdc/test_hashseed_determinism.py``.
"""

import asyncio
import json
import os
import subprocess
import sys

from repro.service.daemon import SchedulingService, ServiceConfig
from repro.service.protocol import normalize, parse_request
from repro.service.worker import reference_result
from repro.store import canonical_json

LOOP = "loop:seed=1,depth=4,width=3,bits=16,inputs=2,phis=2,dist=1,clock=2500"

#: One request per compute kind; the loop design exercises min-ii.
REQUESTS = [
    {"kind": "schedule", "design": "rrot", "clock_period_ps": 2000},
    {"kind": "schedule", "design": "rrot", "clock_period_ps": 1500},  # infeasible
    {"kind": "min-clock", "design": "rrot"},
    {"kind": "min-ii", "design": LOOP},
]

_SERVICE_SCRIPT = r"""
import asyncio, json, sys
from repro.parallel import close_shared_pool
from repro.service.daemon import SchedulingService, ServiceConfig
from repro.store import canonical_json

jobs, batch_window_ms = int(sys.argv[1]), float(sys.argv[2])
requests = json.loads(sys.argv[3])

async def main():
    service = SchedulingService(ServiceConfig(jobs=jobs,
                                              batch_window_ms=batch_window_ms))
    await service.start()
    try:
        # Concurrently, so batching/coalescing paths are actually on.
        responses = await asyncio.gather(*(service.handle(dict(raw))
                                           for raw in requests))
        for response in responses:
            assert response["ok"] is True, response
        return [response["result"] for response in responses]
    finally:
        await service.stop()

try:
    print(canonical_json(asyncio.run(main())))
finally:
    close_shared_pool()
"""


def _run_service(jobs, batch_window_ms, hash_seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _SERVICE_SCRIPT, str(jobs),
         str(batch_window_ms), json.dumps(REQUESTS)],
        env=env, capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_results_are_independent_of_jobs_window_and_hashseed():
    baseline = _run_service(1, 5.0, "0")
    results = json.loads(baseline)
    assert len(results) == len(REQUESTS)
    assert results[0]["feasible"] is True
    assert results[1]["feasible"] is False
    # More workers, no batch window, different hash seeds: same bytes.
    assert _run_service(3, 5.0, "0") == baseline
    assert _run_service(1, 0.0, "31337") == baseline
    assert _run_service(2, 5.0, "random") == baseline


def _normalized(raw):
    config = ServiceConfig()
    return normalize(parse_request(raw),
                     resolution_ps=config.resolution_ps,
                     speculate=config.speculate,
                     max_probes=config.max_probes,
                     latency_weight=config.latency_weight)


def test_service_results_match_the_offline_answers():
    async def served():
        service = SchedulingService(ServiceConfig(jobs=1))
        await service.start()
        try:
            return await asyncio.gather(*(service.handle(dict(raw))
                                          for raw in REQUESTS))
        finally:
            await service.stop()

    responses = asyncio.run(served())
    for raw, response in zip(REQUESTS, responses):
        assert response["ok"] is True, response
        offline = reference_result(_normalized(raw).identity())
        assert canonical_json(response["result"]) == canonical_json(offline), \
            f"service and offline answers diverge for {raw}"
