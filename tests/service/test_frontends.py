"""End-to-end front-end tests driving real daemon subprocesses.

The stdin front end is exercised through pipes; the TCP front end (line
protocol and its HTTP view) through real sockets against an ephemeral
port, including a client that disconnects mid-request.
"""

import json
import os
import socket
import subprocess
import sys

import pytest

SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")

DESIGN = "rrot"
SCHEDULE = {"kind": "schedule", "design": DESIGN, "clock_period_ps": 2000}


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p])
    return env


def _spawn(*flags):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.runner", "serve",
         "--jobs", "1", *flags],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, env=_env())


def _stopped_stats(stderr_text):
    for line in stderr_text.splitlines():
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue  # e.g. interpreter warnings share the stream
        if event.get("event") == "stopped":
            return event["stats"]
    raise AssertionError(f"no stopped event on stderr: {stderr_text!r}")


def test_stdin_pipeline_coalesces_and_reports_errors():
    daemon = _spawn("--stdin")
    try:
        requests = [
            {"kind": "ping", "id": "p"},
            "this is not json",
            {**SCHEDULE, "id": 1},
            {**SCHEDULE, "id": 2},   # identical & pipelined -> coalesces
            {**SCHEDULE, "id": 3},
        ]
        lines = "".join(
            (raw if isinstance(raw, str) else json.dumps(raw)) + "\n"
            for raw in requests)
        out, err = daemon.communicate(lines, timeout=120)
    finally:
        daemon.kill()
    assert daemon.returncode == 0, err

    responses = [json.loads(line) for line in out.splitlines()]
    assert responses[0] == {"event": "ready"}
    by_id = {r["id"]: r for r in responses[1:] if "id" in r}
    assert by_id["p"]["result"] == {"pong": True}
    assert by_id["1"]["ok"] and by_id["2"]["ok"] and by_id["3"]["ok"]
    assert by_id["1"]["result"] == by_id["2"]["result"] == by_id["3"]["result"]

    bad = [r for r in responses[1:] if not r.get("ok") and "event" not in r]
    assert len(bad) == 1 and bad[0]["error"] == "bad-request"

    stats = _stopped_stats(err)
    assert stats["cold_done"] == 1
    assert stats["warm_hits"] + stats["coalesced"] == 2


@pytest.fixture
def tcp_daemon():
    daemon = _spawn("--port", "0")
    try:
        listening = json.loads(daemon.stdout.readline())
        assert listening["event"] == "listening"
        yield daemon, listening["host"], listening["port"]
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate(timeout=30)


def _line_request(host, port, raw, timeout=120.0):
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall((json.dumps(raw) + "\n").encode())
        reply = b""
        while not reply.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            reply += chunk
    return json.loads(reply)


def _http_exchange(host, port, head, body=b"", timeout=120.0):
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(head + body)
        reply = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            reply += chunk
    headers, _, payload = reply.partition(b"\r\n\r\n")
    status = int(headers.split()[1])
    return status, json.loads(payload)


def _http_post(host, port, raw, timeout=120.0):
    body = json.dumps(raw).encode()
    head = (f"POST / HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n").encode()
    return _http_exchange(host, port, head, body, timeout=timeout)


def test_tcp_line_and_http_views_share_one_cache(tcp_daemon):
    daemon, host, port = tcp_daemon

    cold = _line_request(host, port, {**SCHEDULE, "id": "a"})
    assert cold["ok"] is True and cold["served"] == "cold"

    # The HTTP view answers the same question from the same warm cache.
    status, warm = _http_post(host, port, SCHEDULE)
    assert status == 200
    assert warm["served"] == "warm"
    assert warm["result"] == cold["result"]

    status, stats = _http_exchange(
        host, port, f"GET /stats HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
    assert status == 200
    assert stats["result"]["cold_done"] == 1
    assert stats["result"]["warm_hits"] == 1

    # Typed errors map to HTTP statuses.
    status, refused = _http_post(
        host, port, {"kind": "schedule", "design": "no-such-design",
                     "clock_period_ps": 1000})
    assert status == 422 and refused["error"] == "bad-design"
    status, malformed = _http_post(host, port, {"kind": "nope"})
    assert status == 400 and malformed["error"] == "bad-request"

    status, closing = _http_post(host, port, {"kind": "shutdown"})
    assert status == 200 and closing["result"] == {"closing": True}
    out, err = daemon.communicate(timeout=60)
    assert daemon.returncode == 0, err


def test_tcp_client_disconnect_leaves_the_daemon_serving(tcp_daemon):
    daemon, host, port = tcp_daemon

    # Send a cold request and slam the connection shut before the answer.
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.sendall((json.dumps(SCHEDULE) + "\n").encode())
    assert daemon.poll() is None

    # The abandoned computation still lands in the cache: the next client
    # gets it warm -- possibly after a short wait for the solve to finish.
    for _ in range(200):
        response = _line_request(host, port, SCHEDULE)
        assert response["ok"] is True
        if response["served"] == "warm":
            break
    assert response["served"] == "warm"

    _line_request(host, port, {"kind": "shutdown"})
    out, err = daemon.communicate(timeout=60)
    assert daemon.returncode == 0, err
