"""Benchmark-harness tests: workload generation, a small real run, the
schema-8 ``service`` payload and its report-frame rows.
"""

import asyncio
import json

import pytest

from repro.parallel import close_shared_pool
from repro.report.frame import load_any
from repro.service.bench import (CLOCK_LADDER, ServiceBenchResult,
                                 bench_main, build_workload, quick_pairs,
                                 replay_pairs, run_bench)
from repro.service.daemon import ServiceConfig

PAIRS = [("rrot", 2000.0), ("rrot", 2400.0), ("crc32", 3000.0)]


@pytest.fixture(scope="module", autouse=True)
def _shared_pool_cleanup():
    yield
    close_shared_pool()


class TestWorkload:
    def test_quick_pairs_spread_the_clock_ladder(self):
        pairs = quick_pairs(num_designs=2)
        assert len(pairs) == len(set(pairs))
        assert len(pairs) % len(CLOCK_LADDER) == 0
        for design, _ in pairs:
            assert isinstance(design, str) and design

    def test_build_workload_counts_and_bursts(self):
        workload = build_workload(PAIRS, requests=10, hot_fraction=0.5,
                                  dup=3, seed=1)
        assert len(workload) == 30
        # Burst members are identical questions with distinct ids.
        first_burst = workload[:3]
        assert len({(w["design"], w["clock_period_ps"])
                    for w in first_burst}) == 1
        assert [w["id"] for w in first_burst] == ["r0.0", "r0.1", "r0.2"]

    def test_build_workload_is_seed_deterministic(self):
        kwargs = dict(requests=20, hot_fraction=0.8, dup=2)
        assert (build_workload(PAIRS, seed=7, **kwargs)
                == build_workload(PAIRS, seed=7, **kwargs))
        assert (build_workload(PAIRS, seed=7, **kwargs)
                != build_workload(PAIRS, seed=8, **kwargs))

    def test_hot_fraction_one_asks_one_unique_question(self):
        workload = build_workload(PAIRS, requests=10, hot_fraction=1.0,
                                  dup=1, seed=0)
        assert len({(w["design"], w["clock_period_ps"])
                    for w in workload}) == 1

    def test_replay_pairs_rejects_pointless_input(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({
            "schema": 8, "experiment": "service", "quick": False, "jobs": 1,
            "solver": "full", "elapsed_s": 0.0, "store_key": "0" * 32,
            "data": {"workload": {"name": "x", "submitted": 0, "unique": 0,
                                  "dup": 1, "hot_fraction": 0.0,
                                  "concurrency": 1, "jobs": 1,
                                  "batch_window_ms": 0.0, "max_batch": 1},
                     "requests_per_s": 0.0, "p50_latency_s": 0.0,
                     "p95_latency_s": 0.0, "warm_hit_rate": 0.0,
                     "coalesce_rate": 0.0, "warm_speedup": 0.0,
                     "warm_latency_s": 0.0, "cold_latency_s": 0.0,
                     "ok": 0, "errors": 0, "served": {}, "cold_computed": 0,
                     "parity_checked": 0, "elapsed_s": 0.0,
                     "service_stats": {}}}))
        with pytest.raises(ValueError, match="no .design"):
            replay_pairs(path)


def test_small_run_exercises_all_three_layers():
    workload = build_workload(PAIRS, requests=30, hot_fraction=0.9, dup=2,
                              seed=0)
    result = asyncio.run(run_bench(
        ServiceConfig(jobs=1), workload, workload_name="unit",
        unique=len(PAIRS), dup=2, hot_fraction=0.9, concurrency=6, check=1))
    assert result.ok == len(workload) and result.errors == 0
    assert result.served.get("warm", 0) > 0
    assert result.served.get("coalesced", 0) > 0
    assert 0 < result.cold_computed <= len(PAIRS)
    assert result.cold_computed < result.submitted  # coalescing proven
    assert result.parity_checked == 1
    assert result.warm_speedup > 1.0

    payload = result.to_payload()
    assert payload["workload"]["submitted"] == len(workload)
    assert payload["requests_per_s"] > 0
    assert payload["p50_latency_s"] <= payload["p95_latency_s"]
    assert payload["warm_hit_rate"] == pytest.approx(result.warm_hit_rate)


def test_bench_main_writes_a_loadable_payload(tmp_path):
    out = tmp_path / "BENCH_service.json"
    code = bench_main(["--requests", "20", "--dup", "2", "--jobs", "1",
                       "--concurrency", "4", "--no-check",
                       "--out", str(out), "--require-coalescing"])
    assert code == 0
    envelope = json.loads(out.read_text())
    assert envelope["schema"] == 8
    assert envelope["experiment"] == "service"
    assert envelope["data"]["served"].get("coalesced", 0) > 0

    frame = load_any(out)
    assert len(frame.rows) == 1
    row = frame.rows[0]
    assert row.axes["design"] == "service:quick"
    assert row.metrics["requests_per_s"] > 0
    assert set(row.metrics) >= {"requests_per_s", "p50_latency_s",
                                "p95_latency_s", "warm_hit_rate",
                                "coalesce_rate", "warm_speedup"}


def test_gate_failures_exit_nonzero():
    code = bench_main(["--requests", "4", "--dup", "1", "--jobs", "1",
                       "--concurrency", "2", "--hot-fraction", "0.0",
                       "--no-check", "--min-hit-rate", "0.99"])
    assert code == 1
