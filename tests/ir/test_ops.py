"""Tests for opcode signatures and result-width inference."""

import pytest

from repro.ir.ops import OpKind, infer_result_width, signature_of


class TestSignatures:
    def test_every_opcode_has_a_signature(self):
        for kind in OpKind:
            signature = signature_of(kind)
            assert signature.kind is kind
            assert signature.min_operands >= 0

    def test_binary_arithmetic_requires_two_operands(self):
        with pytest.raises(ValueError):
            infer_result_width(OpKind.ADD, [8])
        with pytest.raises(ValueError):
            infer_result_width(OpKind.ADD, [8, 8, 8])

    def test_variadic_logic_accepts_many_operands(self):
        assert infer_result_width(OpKind.XOR, [8, 8, 8, 8]) == 8

    def test_param_requires_explicit_width(self):
        with pytest.raises(ValueError):
            infer_result_width(OpKind.PARAM, [])
        assert infer_result_width(OpKind.PARAM, [], {"width": 12}) == 12


class TestWidthInference:
    def test_add_takes_max_operand_width(self):
        assert infer_result_width(OpKind.ADD, [8, 16]) == 16

    def test_comparison_is_one_bit(self):
        for kind in (OpKind.EQ, OpKind.NE, OpKind.ULT, OpKind.UGE, OpKind.SLT):
            assert infer_result_width(kind, [32, 32]) == 1

    def test_concat_sums_widths(self):
        assert infer_result_width(OpKind.CONCAT, [8, 4, 4]) == 16

    def test_select_takes_max_of_data_operands(self):
        assert infer_result_width(OpKind.SEL, [1, 8, 16]) == 16

    def test_mul_honours_explicit_width(self):
        assert infer_result_width(OpKind.MUL, [16, 16]) == 16
        assert infer_result_width(OpKind.MUL, [16, 16], {"width": 32}) == 32

    def test_popcount_width_is_logarithmic(self):
        assert infer_result_width(OpKind.POPCOUNT, [8]) == 4
        assert infer_result_width(OpKind.POPCOUNT, [32]) == 6

    def test_reduction_is_one_bit(self):
        assert infer_result_width(OpKind.XOR_REDUCE, [32]) == 1


class TestOpKindProperties:
    def test_sources(self):
        assert OpKind.PARAM.is_source
        assert OpKind.CONSTANT.is_source
        assert not OpKind.ADD.is_source

    def test_free_operations_are_wiring(self):
        for kind in (OpKind.CONCAT, OpKind.BIT_SLICE, OpKind.ZERO_EXT,
                     OpKind.SIGN_EXT, OpKind.IDENTITY, OpKind.OUTPUT):
            assert kind.is_free
        for kind in (OpKind.ADD, OpKind.MUL, OpKind.SEL, OpKind.XOR):
            assert not kind.is_free

    def test_commutativity(self):
        assert OpKind.ADD.is_commutative
        assert OpKind.XOR.is_commutative
        assert not OpKind.SUB.is_commutative
        assert not OpKind.SHL.is_commutative

    def test_comparisons(self):
        assert OpKind.ULT.is_comparison
        assert not OpKind.ADD.is_comparison
