"""Tests for structural IR verification."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.node import Node
from repro.ir.ops import OpKind
from repro.ir.verify import IRVerificationError, verify_graph


def test_valid_graph_passes(adder_chain_graph):
    verify_graph(adder_chain_graph)


def test_constant_without_value_rejected():
    builder = GraphBuilder()
    node = builder.constant(5, 8)
    del builder.graph.node(node.node_id).attrs["value"]
    with pytest.raises(IRVerificationError, match="without a value"):
        verify_graph(builder.graph)


def test_constant_too_wide_rejected():
    builder = GraphBuilder()
    node = builder.constant(5, 8)
    builder.graph.node(node.node_id).attrs["value"] = 512
    with pytest.raises(IRVerificationError, match="does not fit"):
        verify_graph(builder.graph)


def test_slice_out_of_range_rejected():
    builder = GraphBuilder()
    x = builder.param("x", 8)
    sliced = builder.bit_slice(x, 0, 4)
    builder.graph.node(sliced.node_id).attrs["start"] = 6
    with pytest.raises(IRVerificationError, match="out of range"):
        verify_graph(builder.graph)


def test_operand_count_violation_rejected():
    builder = GraphBuilder()
    x = builder.param("x", 8)
    y = builder.param("y", 8)
    added = builder.add(x, y)
    builder.graph.node(added.node_id).operands = (x.node_id,)
    with pytest.raises(IRVerificationError, match="at least 2"):
        verify_graph(builder.graph)


def test_non_positive_width_rejected_at_construction():
    with pytest.raises(ValueError):
        Node(0, OpKind.PARAM, (), width=0)


def test_cycle_rejected():
    builder = GraphBuilder()
    x = builder.param("x", 4)
    a = builder.not_(x)
    builder.graph.node(x.node_id).operands = (a.node_id,)
    builder.graph._users[a.node_id].append(x.node_id)
    with pytest.raises(IRVerificationError, match="cycle"):
        verify_graph(builder.graph)
