"""Tests for graph analyses (topological order, reachability, statistics)."""

import pytest

from repro.ir.analysis import (
    graph_statistics,
    is_connected,
    longest_path_lengths,
    reachable_from,
    reaching_to,
    reverse_topological_order,
    topological_order,
)
from repro.ir.builder import GraphBuilder


class TestTopologicalOrder:
    def test_operands_come_first(self, adder_chain_graph):
        order = topological_order(adder_chain_graph)
        position = {nid: i for i, nid in enumerate(order)}
        for node in adder_chain_graph.nodes():
            for operand in node.operands:
                assert position[operand] < position[node.node_id]

    def test_covers_all_nodes(self, adder_chain_graph):
        assert sorted(topological_order(adder_chain_graph)) == \
            adder_chain_graph.node_ids()

    def test_reverse_is_reversed(self, adder_chain_graph):
        assert reverse_topological_order(adder_chain_graph) == \
            list(reversed(topological_order(adder_chain_graph)))

    def test_deterministic(self, diamond_graph):
        assert topological_order(diamond_graph) == topological_order(diamond_graph)


class TestReachability:
    def test_reachable_from_source(self, diamond_graph):
        base = next(n.node_id for n in diamond_graph.nodes() if n.name == "base")
        join = next(n.node_id for n in diamond_graph.nodes() if n.name == "join")
        assert join in reachable_from(diamond_graph, base)
        assert base in reaching_to(diamond_graph, join)

    def test_not_connected_across_independent_params(self, diamond_graph):
        params = [n.node_id for n in diamond_graph.parameters()]
        assert not is_connected(diamond_graph, params[0], params[1])

    def test_self_is_connected(self, diamond_graph):
        assert is_connected(diamond_graph, 0, 0)


class TestStatistics:
    def test_counts(self, adder_chain_graph):
        stats = graph_statistics(adder_chain_graph)
        assert stats.num_nodes == len(adder_chain_graph)
        assert stats.num_params == 4
        assert stats.num_outputs == 1
        assert stats.num_operations == 4  # 3 adds + 1 mul
        assert stats.kind_histogram["add"] == 3
        assert stats.kind_histogram["mul"] == 1

    def test_total_bits_excludes_sources_and_outputs(self, adder_chain_graph):
        stats = graph_statistics(adder_chain_graph)
        assert stats.total_bits == 4 * 16

    def test_depth(self, adder_chain_graph):
        stats = graph_statistics(adder_chain_graph)
        assert stats.max_depth == 5  # param -> s1 -> s2 -> s3 -> product -> out

    def test_longest_path_lengths_monotone(self, adder_chain_graph):
        depth = longest_path_lengths(adder_chain_graph)
        for node in adder_chain_graph.nodes():
            for operand in node.operands:
                assert depth[node.node_id] > depth[operand]


class TestCycleDetection:
    def test_cycle_raises(self):
        builder = GraphBuilder()
        x = builder.param("x", 4)
        a = builder.not_(x)
        # Force a cycle by mutating the node's operand tuple (not possible
        # through the public API, hence the direct attribute poke).
        node = builder.graph.node(x.node_id)
        node.operands = (a.node_id,)
        builder.graph._users[a.node_id].append(x.node_id)
        with pytest.raises(ValueError):
            topological_order(builder.graph)
