"""Property-based round-trip tests for the textual IR format.

The printer (:func:`graph_to_text`) and the parser
(:func:`graph_from_text`) must be exact inverses over everything a graph
can carry: hostile names (whitespace, ``#``, commas, quotes, leading
digits), integer and string attributes, arbitrary widths, and loop
back-edges.  A second family pins the parser's diagnostic contract: every
rejection is a :class:`ValueError` naming the 1-based line number.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.ir.builder import GraphBuilder
from repro.ir.graph import DataflowGraph
from repro.ir.ops import OpKind
from repro.ir.textual import graph_from_text, graph_to_text, parse_design_text

# Printable-ish names including every character class the quoting layer
# must defend: hash (comment marker), comma/paren (argument syntax),
# quotes and backslashes (the JSON escape path), whitespace, digits first.
_NAME_ALPHABET = st.sampled_from(
    list("abcXYZ019 _#,()\"\\'=:./-") + ["\t"])
_names = st.text(alphabet=_NAME_ALPHABET, min_size=0, max_size=12)
_BINARY = ("add", "sub", "xor", "and_", "or_", "mul")


@st.composite
def _graphs(draw):
    builder = GraphBuilder(draw(_names) or "g")
    width = draw(st.sampled_from([4, 8, 16, 32]))
    pool = [builder.param(f"p{i}", width) for i in range(draw(
        st.integers(min_value=1, max_value=3)))]
    pool.append(builder.constant(
        draw(st.integers(min_value=0, max_value=(1 << width) - 1)), width,
        name=draw(_names)))
    phis = []
    for index in range(draw(st.integers(min_value=0, max_value=2))):
        phi = builder.phi(draw(st.sampled_from(pool)), name=draw(_names))
        phis.append(phi)
        pool.append(phi)
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        method = draw(st.sampled_from(_BINARY))
        value = getattr(builder, method)(draw(st.sampled_from(pool)),
                                         draw(st.sampled_from(pool)),
                                         name=draw(_names))
        pool.append(value)
    for phi in phis:
        # Close every recurrence on a node downstream-ish of the pool; any
        # non-phi node of matching width is structurally legal.
        candidates = [n for n in pool
                      if n.width == phi.width and n.kind is not OpKind.PHI]
        builder.back_edge(phi, draw(st.sampled_from(candidates)),
                          distance=draw(st.integers(min_value=1, max_value=3)))
    builder.output(pool[-1], name=draw(_names))
    return builder.graph


@settings(max_examples=150, deadline=None)
@given(_graphs())
def test_round_trip_is_exact(graph):
    text = graph_to_text(graph)
    parsed = graph_from_text(text)
    assert parsed.name == graph.name
    assert len(parsed) == len(graph)
    for a, b in zip(graph.nodes(), parsed.nodes()):
        assert a.kind is b.kind
        assert a.width == b.width
        assert a.operands == b.operands
        assert a.name == b.name
        # The parser always passes an explicit width to add_node, which
        # records a `width` attr; builder-inferred nodes don't carry one
        # and the printer never emits it, so compare modulo that key.
        strip = lambda attrs: {k: v for k, v in attrs.items() if k != "width"}
        assert strip(a.attrs) == strip(b.attrs)
    assert parsed.back_edges() == graph.back_edges()
    # Idempotence: printing the parse reproduces the text byte-for-byte.
    assert graph_to_text(parsed) == text


@settings(max_examples=50, deadline=None)
@given(_names)
def test_design_name_round_trips(name):
    graph = DataflowGraph(name or "g")
    graph.add_node(OpKind.PARAM, [], width=8, name="x")
    assert graph_from_text(graph_to_text(graph)).name == graph.name


def test_string_attribute_round_trips():
    graph = DataflowGraph("g")
    node = graph.add_node(OpKind.PARAM, [], width=8, name="x",
                          note="weird, #value\"")
    parsed = graph_from_text(graph_to_text(graph))
    assert parsed.node(node.node_id).attrs["note"] == "weird, #value\""


class TestDiagnostics:
    """Every parser rejection is a ValueError naming the offending line."""

    def _rejects(self, text, line_no, match=""):
        with pytest.raises(ValueError, match=f"line {line_no}.*{match}"):
            parse_design_text(text)

    def test_duplicate_node_id(self):
        self._rejects("design g\nn0 = param() : 8\nn0 = param() : 8\n",
                      3, "duplicate node id")

    def test_forward_reference(self):
        self._rejects("design g\nn0 = add(n1, n1) : 8\nn1 = param() : 8\n",
                      2, "forward references")

    def test_unknown_opcode(self):
        self._rejects("design g\nn0 = frobnicate() : 8\n", 2, "unknown opcode")

    def test_bad_width(self):
        self._rejects("design g\nn0 = param() : 0\n", 2, "width")

    def test_malformed_line(self):
        self._rejects("design g\nn0 := param : 8\n", 2, "malformed")

    def test_duplicate_design_line(self):
        self._rejects("design g\ndesign h\n", 2, "duplicate 'design'")

    def test_duplicate_clock_line(self):
        self._rejects("design g\nclock 100\nclock 200\n", 3,
                      "duplicate 'clock'")

    def test_negative_clock(self):
        self._rejects("design g\nclock -5\n", 2, "positive")

    def test_backedge_to_undefined_node(self):
        self._rejects("design g\nn0 = param() : 8\n"
                      "backedge n0 -> n9 distance=1\n", 3, "undefined")

    def test_backedge_to_non_phi(self):
        self._rejects("design g\nn0 = param() : 8\nn1 = add(n0, n0) : 8\n"
                      "backedge n1 -> n0 distance=1\n", 4)

    def test_backedge_bad_distance(self):
        text = ("design g\nn0 = constant(value=0) : 8\nn1 = phi(n0) : 8\n"
                "backedge n0 -> n1 distance=0\n")
        self._rejects(text, 4, "distance")

    def test_width_attribute_banned(self):
        self._rejects("design g\nn0 = param(width=8) : 8\n", 2, "width")

    def test_duplicate_attribute(self):
        self._rejects("design g\nn0 = constant(value=1, value=2) : 8\n", 2,
                      "duplicate attribute")

    def test_unterminated_string(self):
        self._rejects('design g\nn0 = constant(value="oops) : 8\n', 2)

    def test_missing_design_line_names_first_line(self):
        self._rejects("n0 = param() : 8\n", 1, "design")

    def test_comment_and_blank_lines_skipped(self):
        graph, clock = parse_design_text(
            "// header\n\ndesign g\n// mid\nclock 1234.5\nn0 = param() : 8\n")
        assert len(graph) == 1 and clock == 1234.5
