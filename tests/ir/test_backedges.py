"""Tests for loop back-edges: graph storage, builder, verifier, interpreter."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.analysis import graph_statistics, topological_order
from repro.ir.graph import DataflowGraph
from repro.ir.interpreter import (evaluate_loop, evaluate_loop_outputs,
                                  simulate_pipelined_loop)
from repro.ir.ops import OpKind
from repro.ir.verify import IRVerificationError, verify_graph


def _accumulator():
    """sum += x each iteration; returns (graph, phi, add)."""
    builder = GraphBuilder("accum")
    x = builder.param("x", 16)
    zero = builder.constant(0, 16)
    acc = builder.phi(zero, name="acc")
    total = builder.add(acc, x, name="total")
    builder.output(total, name="out")
    builder.back_edge(acc, total, distance=1)
    return builder.graph, acc, total


class TestGraphStorage:
    def test_back_edge_recorded_and_sorted(self):
        graph, acc, total = _accumulator()
        edges = graph.back_edges()
        assert len(edges) == 1
        assert edges[0].phi == acc.node_id
        assert edges[0].src == total.node_id
        assert edges[0].distance == 1
        assert graph.has_back_edges
        assert graph.back_edge_of(acc.node_id) == edges[0]

    def test_back_edge_requires_phi_target(self):
        builder = GraphBuilder("g")
        x = builder.param("x", 8)
        y = builder.add(x, x)
        with pytest.raises(ValueError, match="phi"):
            builder.graph.add_back_edge(y.node_id, x.node_id, 1)

    def test_back_edge_rejects_duplicate_and_bad_distance(self):
        graph, acc, total = _accumulator()
        with pytest.raises(ValueError):
            graph.add_back_edge(acc.node_id, total.node_id, 1)
        builder = GraphBuilder("g")
        z = builder.constant(0, 8)
        phi = builder.phi(z)
        with pytest.raises(ValueError):
            builder.graph.add_back_edge(phi.node_id, z.node_id, 0)

    def test_back_edge_rejects_missing_nodes(self):
        graph, acc, _ = _accumulator()
        with pytest.raises(KeyError):
            graph.add_back_edge(999, acc.node_id, 1)

    def test_remove_node_guards_back_edge_source(self):
        graph, _, total = _accumulator()
        with pytest.raises(ValueError):
            graph.remove_node(total.node_id)

    def test_copy_carries_back_edges(self):
        graph, _, _ = _accumulator()
        clone = graph.copy()
        assert clone.back_edges() == graph.back_edges()
        # and the copy is independent
        clone._back_edges.clear()
        assert graph.has_back_edges

    def test_forward_graph_stays_a_dag(self):
        graph, acc, total = _accumulator()
        order = topological_order(graph)
        assert order.index(acc.node_id) < order.index(total.node_id)

    def test_statistics_count_back_edges(self):
        graph, _, _ = _accumulator()
        assert graph_statistics(graph).num_back_edges == 1

    def test_networkx_export_marks_back_edges(self):
        graph, acc, total = _accumulator()
        exported = graph.to_networkx()
        data = exported.get_edge_data(total.node_id, acc.node_id)
        assert data["back"] is True and data["distance"] == 1


class TestVerifier:
    def test_valid_loop_graph_verifies(self):
        graph, _, _ = _accumulator()
        verify_graph(graph)

    def test_phi_without_back_edge_rejected(self):
        builder = GraphBuilder("g")
        z = builder.constant(0, 8)
        builder.phi(z)
        with pytest.raises(IRVerificationError, match="back-edge"):
            verify_graph(builder.graph)

    def test_width_mismatch_rejected(self):
        graph = DataflowGraph("g")
        wide = graph.add_node(OpKind.PARAM, [], width=16, name="x")
        phi = graph.add_node(OpKind.PHI, [wide.node_id], width=16)
        narrow = graph.add_node(OpKind.BIT_SLICE, [phi.node_id], width=8,
                                start=0)
        graph.add_back_edge(phi.node_id, narrow.node_id, 1)
        with pytest.raises(IRVerificationError, match="width|bit"):
            verify_graph(graph)


class TestLoopInterpreter:
    def test_accumulator_golden_sums(self):
        graph, _, total = _accumulator()
        history = evaluate_loop(graph, {"x": 3}, iterations=5)
        assert [frame[total.node_id] for frame in history] == [3, 6, 9, 12, 15]

    def test_streaming_inputs_consume_one_value_per_iteration(self):
        graph, _, total = _accumulator()
        history = evaluate_loop(graph, {"x": [1, 2, 3, 4]}, iterations=4)
        assert [frame[total.node_id] for frame in history] == [1, 3, 6, 10]

    def test_short_input_stream_rejected(self):
        graph, _, _ = _accumulator()
        with pytest.raises(ValueError):
            evaluate_loop(graph, {"x": [1, 2]}, iterations=4)

    def test_distance_two_reads_two_iterations_back(self):
        builder = GraphBuilder("fib")
        one = builder.constant(1, 16)
        acc = builder.phi(one, name="acc")
        double = builder.add(acc, acc, name="double")
        builder.output(double)
        builder.back_edge(acc, double, distance=2)
        history = evaluate_loop(builder.graph, {}, iterations=5)
        # iterations 0 and 1 see the init (1); from 2 on, value(i-2)*2.
        values = [frame[double.node_id] for frame in history]
        assert values == [2, 2, 4, 4, 8]

    def test_evaluate_loop_outputs_names_outputs(self):
        graph, _, _ = _accumulator()
        outputs = evaluate_loop_outputs(graph, {"x": 2}, iterations=3)
        assert [frame["out"] for frame in outputs] == [2, 4, 6]

    def test_pipelined_simulation_matches_golden(self):
        graph, acc, total = _accumulator()
        stages = {n.node_id: 0 for n in graph.nodes()}
        golden = evaluate_loop(graph, {"x": 7}, iterations=6)
        simulated = simulate_pipelined_loop(graph, stages, ii=1,
                                            inputs={"x": 7}, iterations=6)
        assert simulated == golden

    def test_pipelined_simulation_rejects_late_back_edge_value(self):
        graph, acc, total = _accumulator()
        # total lands one stage after the phi: at II 1 x distance 1 the
        # carried value is not registered in time.
        stages = {n.node_id: 0 for n in graph.nodes()}
        stages[total.node_id] = 1
        out = [n for n in graph.nodes() if n.kind is OpKind.OUTPUT]
        stages[out[0].node_id] = 1
        with pytest.raises(ValueError):
            simulate_pipelined_loop(graph, stages, ii=1, inputs={"x": 1},
                                    iterations=3)

    def test_pipelined_simulation_rejects_missing_stage(self):
        graph, _, total = _accumulator()
        stages = {n.node_id: 0 for n in graph.nodes()}
        del stages[total.node_id]
        with pytest.raises(ValueError):
            simulate_pipelined_loop(graph, stages, ii=1, inputs={"x": 1},
                                    iterations=2)
