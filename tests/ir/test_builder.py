"""Tests for the GraphBuilder convenience API."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.ops import OpKind
from repro.ir.verify import verify_graph


class TestBasicOps:
    def test_param_and_output(self):
        builder = GraphBuilder("t")
        x = builder.param("x", 8)
        builder.output(x, name="out")
        verify_graph(builder.graph)
        assert builder.graph.node(x.node_id).kind is OpKind.PARAM

    def test_constant_masks_to_width(self):
        builder = GraphBuilder()
        c = builder.constant(0x1FF, 8)
        assert c.attrs["value"] == 0xFF

    def test_arithmetic_chain(self):
        builder = GraphBuilder()
        x = builder.param("x", 16)
        y = builder.param("y", 16)
        result = builder.mul(builder.add(x, y), builder.sub(x, y))
        assert result.width == 16
        verify_graph(builder.graph)

    def test_select_and_compare(self):
        builder = GraphBuilder()
        a = builder.param("a", 8)
        b = builder.param("b", 8)
        picked = builder.select(builder.ult(a, b), a, b)
        assert picked.width == 8

    def test_bit_manipulation(self):
        builder = GraphBuilder()
        a = builder.param("a", 16)
        low = builder.bit_slice(a, 0, 8)
        high = builder.bit_slice(a, 8, 8)
        rebuilt = builder.concat(high, low)
        assert low.width == 8 and high.width == 8 and rebuilt.width == 16
        verify_graph(builder.graph)

    def test_constant_shift_helpers(self):
        builder = GraphBuilder()
        a = builder.param("a", 32)
        shifted = builder.shrl_const(a, 3)
        rotated = builder.rotr_const(a, 7)
        assert shifted.width == 32 and rotated.width == 32
        verify_graph(builder.graph)


class TestTreeHelpers:
    def test_add_tree_sums_everything(self):
        builder = GraphBuilder()
        operands = [builder.param(f"p{i}", 8) for i in range(7)]
        total = builder.add_tree(operands)
        assert total.width == 8
        verify_graph(builder.graph)
        # A balanced tree over 7 operands needs exactly 6 adders.
        adds = [n for n in builder.graph.nodes() if n.kind is OpKind.ADD]
        assert len(adds) == 6

    def test_xor_tree(self):
        builder = GraphBuilder()
        operands = [builder.param(f"p{i}", 4) for i in range(5)]
        builder.xor_tree(operands)
        xors = [n for n in builder.graph.nodes() if n.kind is OpKind.XOR]
        assert len(xors) == 4

    def test_empty_tree_rejected(self):
        builder = GraphBuilder()
        with pytest.raises(ValueError):
            builder.add_tree([])


class TestNodeLikeArguments:
    def test_accepts_ids_and_nodes(self):
        builder = GraphBuilder()
        x = builder.param("x", 8)
        y = builder.param("y", 8)
        by_node = builder.add(x, y)
        by_id = builder.add(x.node_id, y.node_id)
        assert by_node.operands == by_id.operands
