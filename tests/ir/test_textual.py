"""Tests for the textual IR format."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.ops import OpKind
from repro.ir.textual import graph_from_text, graph_to_text


def _build_rich_graph():
    builder = GraphBuilder("rich")
    x = builder.param("x", 16)
    y = builder.param("y", 16)
    c = builder.constant(42, 16, name="c42")
    s = builder.add(x, y)
    sliced = builder.bit_slice(s, 4, 8)
    selected = builder.select(builder.ult(sliced, builder.bit_slice(c, 0, 8)),
                              sliced, builder.bit_slice(c, 0, 8))
    builder.output(selected, name="result")
    return builder.graph


class TestRoundTrip:
    def test_round_trip_preserves_structure(self):
        original = _build_rich_graph()
        text = graph_to_text(original)
        parsed = graph_from_text(text)
        assert len(parsed) == len(original)
        assert parsed.name == original.name
        for a, b in zip(original.nodes(), parsed.nodes()):
            assert a.kind is b.kind
            assert a.width == b.width
            assert len(a.operands) == len(b.operands)

    def test_round_trip_preserves_attributes(self):
        original = _build_rich_graph()
        parsed = graph_from_text(graph_to_text(original))
        constants = [n for n in parsed.nodes() if n.kind is OpKind.CONSTANT]
        assert any(n.attrs.get("value") == 42 for n in constants)
        slices = [n for n in parsed.nodes() if n.kind is OpKind.BIT_SLICE]
        assert {n.attrs.get("start") for n in slices} == {4, 0}

    def test_round_trip_is_idempotent(self):
        original = _build_rich_graph()
        once = graph_to_text(original)
        twice = graph_to_text(graph_from_text(once))
        assert once == twice


class TestParsing:
    def test_missing_design_line_rejected(self):
        with pytest.raises(ValueError):
            graph_from_text("n0 = param() : 8")

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            graph_from_text("design d\nthis is not a node")

    def test_forward_reference_rejected(self):
        text = "design d\nn0 = not(n1) : 8\nn1 = param() : 8"
        with pytest.raises(ValueError):
            graph_from_text(text)

    def test_named_nodes_keep_names(self):
        text = "design d\nn0 = param() : 8  # my_input\nn1 = not(n0) : 8"
        parsed = graph_from_text(text)
        assert parsed.node(0).name == "my_input"
