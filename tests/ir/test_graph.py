"""Tests for the DataflowGraph container."""

import pytest

from repro.ir.graph import DataflowGraph
from repro.ir.ops import OpKind


@pytest.fixture
def small_graph():
    graph = DataflowGraph("small")
    x = graph.add_node(OpKind.PARAM, (), width=8, name="x")
    y = graph.add_node(OpKind.PARAM, (), width=8, name="y")
    total = graph.add_node(OpKind.ADD, (x.node_id, y.node_id), name="total")
    graph.add_node(OpKind.OUTPUT, (total.node_id,), name="out")
    return graph


class TestConstruction:
    def test_node_count(self, small_graph):
        assert len(small_graph) == 4

    def test_ids_are_sequential(self, small_graph):
        assert small_graph.node_ids() == [0, 1, 2, 3]

    def test_width_inference_from_operands(self, small_graph):
        assert small_graph.node(2).width == 8

    def test_unknown_operand_rejected(self):
        graph = DataflowGraph()
        with pytest.raises(KeyError):
            graph.add_node(OpKind.NOT, (42,))

    def test_duplicate_operands_allowed(self):
        graph = DataflowGraph()
        x = graph.add_node(OpKind.PARAM, (), width=4, name="x")
        doubled = graph.add_node(OpKind.ADD, (x.node_id, x.node_id))
        assert doubled.operands == (x.node_id, x.node_id)
        # num_users counts distinct consumers.
        assert graph.num_users(x.node_id) == 1

    def test_auto_generated_names_are_unique(self, small_graph):
        names = [node.name for node in small_graph.nodes()]
        assert len(names) == len(set(names))


class TestAccessors:
    def test_users(self, small_graph):
        assert small_graph.users_of(0) == [2]
        assert small_graph.users_of(2) == [3]
        assert small_graph.users_of(3) == []

    def test_parameters_and_outputs(self, small_graph):
        assert [n.name for n in small_graph.parameters()] == ["x", "y"]
        assert [n.name for n in small_graph.outputs()] == ["out"]

    def test_outputs_fall_back_to_sinks(self):
        graph = DataflowGraph()
        x = graph.add_node(OpKind.PARAM, (), width=4)
        inverted = graph.add_node(OpKind.NOT, (x.node_id,))
        assert [n.node_id for n in graph.outputs()] == [inverted.node_id]

    def test_source_ids(self, small_graph):
        assert small_graph.source_ids() == {0, 1}

    def test_contains(self, small_graph):
        assert 0 in small_graph
        assert 99 not in small_graph


class TestInterop:
    def test_to_networkx_preserves_structure(self, small_graph):
        nx_graph = small_graph.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.has_edge(0, 2)
        assert nx_graph.has_edge(2, 3)
        assert not nx_graph.has_edge(0, 1)

    def test_copy_is_independent(self, small_graph):
        clone = small_graph.copy("clone")
        clone.add_node(OpKind.NOT, (0,))
        assert len(clone) == len(small_graph) + 1
        assert clone.name == "clone"

    def test_results_are_single_valued(self, small_graph):
        node = small_graph.node(2)
        assert len(node.results) == 1
        assert node.result.width == 8
        assert node.result.node_id == 2
