"""Tests for delay re-propagation (Algorithm 2) and the Floyd-Warshall variant."""

import numpy as np
import pytest

from repro.isdc.delay_matrix import DelayMatrix
from repro.isdc.reformulate import floyd_warshall_refine, propagate_delays
from repro.sdc.delays import NOT_CONNECTED, node_delays
from repro.tech.delay_model import OperatorModel


def _fresh_matrix(graph):
    delays = node_delays(graph, OperatorModel(pessimism=1.0))
    return DelayMatrix.from_graph(graph, delays)


class TestPropagateDelays:
    def test_no_feedback_is_a_fixpoint(self, adder_chain_graph):
        matrix = _fresh_matrix(adder_chain_graph)
        baseline = matrix.matrix.copy()
        propagate_delays(matrix)
        # Without any feedback the naive estimates are already consistent, so
        # nothing may increase and entries only change by tightening.
        assert np.all((matrix.matrix <= baseline + 1e-9)
                      | (baseline == NOT_CONNECTED))

    def test_feedback_propagates_to_longer_paths(self, adder_chain_graph):
        matrix = _fresh_matrix(adder_chain_graph)
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        d_s3 = matrix.individual_delay(names["s3"])
        before_long = matrix.get(names["s1"], names["s3"])
        # Feedback: the s1->s2 pair measured at 100 ps.
        matrix.update_with_subgraph([names["s1"], names["s2"]], 100.0)
        propagate_delays(matrix)
        after_long = matrix.get(names["s1"], names["s3"])
        assert after_long == pytest.approx(100.0 + d_s3)
        assert after_long < before_long

    def test_propagation_reaches_downstream_users(self, adder_chain_graph):
        matrix = _fresh_matrix(adder_chain_graph)
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        matrix.update_with_subgraph([names["s1"], names["s2"], names["s3"]], 150.0)
        propagate_delays(matrix)
        product_delay = matrix.individual_delay(names["product"])
        assert matrix.get(names["s1"], names["product"]) == \
            pytest.approx(150.0 + product_delay)

    def test_never_connects_unconnected_pairs(self, diamond_graph):
        matrix = _fresh_matrix(diamond_graph)
        params = [p.node_id for p in diamond_graph.parameters()]
        propagate_delays(matrix)
        assert not matrix.is_connected(params[0], params[1])

    def test_diagonal_untouched(self, adder_chain_graph):
        matrix = _fresh_matrix(adder_chain_graph)
        diagonal = matrix.matrix.diagonal().copy()
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        matrix.update_with_subgraph([names["s1"], names["s2"]], 100.0)
        propagate_delays(matrix)
        # The s1/s2 diagonal entries were lowered by the *feedback* itself,
        # but propagation must not lower any diagonal further.
        refreshed = matrix.matrix.diagonal()
        for index in range(len(diagonal)):
            assert refreshed[index] <= diagonal[index] + 1e-9


class TestFloydWarshall:
    def test_refine_tightens_through_intermediates(self, adder_chain_graph):
        matrix = _fresh_matrix(adder_chain_graph)
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        d_s2 = matrix.individual_delay(names["s2"])
        d_s3 = matrix.individual_delay(names["s3"])
        # Feedback above the individual delays, so only pair estimates change.
        feedback = d_s2 + 100.0
        matrix.update_with_subgraph([names["s1"], names["s2"]], feedback)
        changed = floyd_warshall_refine(matrix)
        assert changed > 0
        # Relaxation through s2: D[s1][s2] + D[s2][s3] - d(s2).
        assert matrix.get(names["s1"], names["s3"]) <= \
            feedback + (d_s2 + d_s3) - d_s2 + 1e-9

    def test_refine_is_idempotent(self, adder_chain_graph):
        matrix = _fresh_matrix(adder_chain_graph)
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        matrix.update_with_subgraph([names["s1"], names["s2"]], 100.0)
        floyd_warshall_refine(matrix)
        assert floyd_warshall_refine(matrix) == 0

    def test_both_reformulations_only_tighten(self, adder_chain_graph):
        """Alg. 2 and Floyd-Warshall are different heuristics; neither may
        ever loosen an estimate beyond the naive initialisation."""
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        baseline = _fresh_matrix(adder_chain_graph).matrix.copy()
        quadratic = _fresh_matrix(adder_chain_graph)
        cubic = _fresh_matrix(adder_chain_graph)
        for target in (quadratic, cubic):
            target.update_with_subgraph([names["s1"], names["s2"]], 100.0)
        propagate_delays(quadratic)
        floyd_warshall_refine(cubic)
        connected = baseline != NOT_CONNECTED
        assert np.all(quadratic.matrix[connected] <= baseline[connected] + 1e-6)
        assert np.all(cubic.matrix[connected] <= baseline[connected] + 1e-6)
