"""Parallel batch evaluation must not change any ISDC result.

The satellite requirement: ``jobs=1`` and ``jobs=4`` produce byte-identical
``IsdcResult`` histories (wall-clock fields aside) on Table-I designs, and
cache accounting stays correct under batch evaluation.
"""

import dataclasses
import pickle

import pytest

from repro.designs.suite import table1_suite
from repro.isdc.config import IsdcConfig
from repro.isdc.scheduler import IsdcScheduler

DESIGNS = ("rrot", "crc32")


def _case(name):
    return next(case for case in table1_suite() if case.name == name)


def _run(name: str, jobs: int):
    case = _case(name)
    config = IsdcConfig(clock_period_ps=case.clock_period_ps,
                        subgraphs_per_iteration=4, max_iterations=3,
                        patience=3, track_estimation_error=True, jobs=jobs)
    scheduler = IsdcScheduler(config)
    result = scheduler.schedule(case.build())
    scheduler.feedback.backend.close()
    return result, scheduler.feedback.cache.stats


def _canonical_history(result):
    """The history with wall-clock fields zeroed (everything else compared)."""
    return [dataclasses.replace(record, runtime_s=0.0, solver_runtime_s=0.0,
                                synthesis_runtime_s=0.0)
            for record in result.history]


@pytest.mark.parametrize("design", DESIGNS)
def test_jobs_do_not_change_isdc_histories(design):
    serial, serial_stats = _run(design, jobs=1)
    parallel, parallel_stats = _run(design, jobs=4)

    assert pickle.dumps(_canonical_history(serial)) == \
        pickle.dumps(_canonical_history(parallel))
    assert serial.final_report.num_registers == \
        parallel.final_report.num_registers
    assert serial.final_report.stage_delays_ps == \
        parallel.final_report.stage_delays_ps
    assert serial.initial_report.slack_ps == parallel.initial_report.slack_ps

    # Cache accounting is independent of the fan-out.
    assert serial_stats.misses == parallel_stats.misses
    assert serial_stats.hits == parallel_stats.hits
    assert serial.subgraphs_evaluated == parallel.subgraphs_evaluated


def test_estimator_backend_runs_the_loop():
    """Quick mode: the cheap backend drives the whole loop end to end."""
    case = _case("rrot")
    config = IsdcConfig(clock_period_ps=case.clock_period_ps,
                        subgraphs_per_iteration=4, max_iterations=2,
                        patience=2, track_estimation_error=False,
                        use_characterized_delays=False, backend="estimator")
    result = IsdcScheduler(config).schedule(case.build())
    assert result.iterations >= 0
    assert result.final_report.num_registers <= \
        result.initial_report.num_registers


def test_disk_cache_warms_a_second_run(tmp_path):
    case = _case("rrot")
    path = tmp_path / "evals.jsonl"

    def run():
        config = IsdcConfig(clock_period_ps=case.clock_period_ps,
                            subgraphs_per_iteration=4, max_iterations=2,
                            patience=2, track_estimation_error=False,
                            cache_path=str(path))
        scheduler = IsdcScheduler(config)
        result = scheduler.schedule(case.build())
        return result, scheduler.feedback.cache.stats

    cold_result, cold_stats = run()
    warm_result, warm_stats = run()
    assert cold_stats.synth_runs > 0
    assert cold_stats.synth_runs == cold_stats.misses
    assert warm_stats.disk_loaded == cold_stats.synth_runs
    # The warm run is answered entirely by the disk layer: its memory misses
    # are all disk hits and nothing is synthesised.
    assert warm_stats.synth_runs == 0
    assert warm_stats.disk_hits == warm_stats.misses > 0
    assert warm_result.subgraphs_evaluated == 0
    assert cold_result.subgraphs_evaluated == cold_stats.synth_runs
    assert warm_result.final_report.num_registers == \
        cold_result.final_report.num_registers
