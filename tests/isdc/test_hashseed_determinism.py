"""ISDC results must not depend on interpreter hash randomisation.

The seed's candidate extraction broke delay ties through Python set
iteration order, which made schedules a function of ``PYTHONHASHSEED``.
These tests run the loop (and a small campaign) in subprocesses under
*different* hash seeds and assert byte-identical serialized schedules,
histories and campaign payloads.
"""

import json
import os
import subprocess
import sys

import pytest

_LOOP_SCRIPT = r"""
import dataclasses, json, sys
from repro.designs.generator import GeneratorParams, build_generated_design
from repro.designs.suite import suite_by_name
from repro.isdc.config import IsdcConfig
from repro.isdc.scheduler import IsdcScheduler

def canonical(design_name, graph, clock):
    config = IsdcConfig(clock_period_ps=clock, subgraphs_per_iteration=4,
                        max_iterations=3, patience=3,
                        track_estimation_error=False,
                        use_characterized_delays=False, backend="estimator")
    result = IsdcScheduler(config).schedule(graph)
    history = [dataclasses.replace(r, runtime_s=0.0, solver_runtime_s=0.0,
                                   synthesis_runtime_s=0.0)
               for r in result.history]
    return {
        "design": design_name,
        "schedule": {str(k): v for k, v in sorted(result.final_schedule.stages.items())},
        "history": [dataclasses.asdict(r) for r in history],
        "evaluations": result.subgraphs_evaluated,
    }

payloads = []
params = GeneratorParams(seed=5, depth=5, width=3)
payloads.append(canonical(params.name, build_generated_design(params), 2500.0))
case = suite_by_name("rrot")
payloads.append(canonical(case.name, case.build(), case.clock_period_ps))
json.dump(payloads, sys.stdout, sort_keys=True)
"""

_CAMPAIGN_SCRIPT = r"""
import json, sys
from repro.campaign import quick_spec, run_campaign

result = run_campaign(quick_spec(num_designs=2))
json.dump(result.payload, sys.stdout, sort_keys=True)
"""


def _run_under_seed(script: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")
    completed = subprocess.run([sys.executable, "-c", script], env=env,
                               capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


@pytest.mark.parametrize("other_seed", ["1", "31337", "random"])
def test_isdc_loop_is_hashseed_independent(other_seed):
    baseline = _run_under_seed(_LOOP_SCRIPT, "0")
    assert json.loads(baseline)  # sanity: real payloads, not empty output
    assert _run_under_seed(_LOOP_SCRIPT, other_seed) == baseline


def test_campaign_payload_is_hashseed_independent():
    baseline = _run_under_seed(_CAMPAIGN_SCRIPT, "0")
    assert json.loads(baseline)["num_jobs"] == 8
    assert _run_under_seed(_CAMPAIGN_SCRIPT, "424242") == baseline
