"""End-to-end tests of the ISDC iterative scheduler."""

import pytest

from repro.designs.crypto import build_crc32
from repro.designs.ml_core import build_ml_core_datapath1
from repro.isdc.config import ExpansionStrategy, ExtractionStrategy, IsdcConfig
from repro.isdc.scheduler import IsdcScheduler


@pytest.fixture(scope="module")
def datapath1_result():
    """ISDC run on the small ML-core dot-product design (shared across tests)."""
    config = IsdcConfig(clock_period_ps=2500.0, subgraphs_per_iteration=8,
                        max_iterations=8)
    return IsdcScheduler(config).schedule(build_ml_core_datapath1())


class TestIsdcOutcome:
    def test_registers_never_increase(self, datapath1_result):
        assert datapath1_result.final_report.num_registers <= \
            datapath1_result.initial_report.num_registers

    def test_register_reduction_on_design_with_headroom(self, datapath1_result):
        assert datapath1_result.register_reduction > 0.0

    def test_final_schedule_respects_dependencies(self, datapath1_result):
        schedule = datapath1_result.final_schedule
        graph = schedule.graph
        for node in graph.nodes():
            for operand in node.operands:
                assert schedule.stage_of(operand) <= schedule.stage_of(node.node_id)

    def test_final_stages_meet_clock_post_synthesis(self, datapath1_result):
        assert datapath1_result.final_report.slack_ps >= 0.0

    def test_history_starts_with_initial_schedule(self, datapath1_result):
        history = datapath1_result.history
        assert history[0].iteration == 0
        assert history[0].subgraphs_evaluated == 0
        assert history[0].num_registers == \
            datapath1_result.initial_report.num_registers

    def test_runtime_ratio_above_one(self, datapath1_result):
        assert datapath1_result.runtime_ratio > 1.0
        assert datapath1_result.total_runtime_s > datapath1_result.baseline_runtime_s

    def test_estimation_error_shrinks(self, datapath1_result):
        errors = [e for e in datapath1_result.estimation_error_trajectory()
                  if e is not None]
        assert len(errors) >= 2
        assert errors[-1] <= errors[0]

    def test_trajectory_monotone_in_best(self, datapath1_result):
        trajectory = datapath1_result.register_trajectory()
        assert min(trajectory) == datapath1_result.final_report.num_registers


class TestConfigurationVariants:
    def test_delay_strategy_also_valid(self):
        config = IsdcConfig(clock_period_ps=2500.0, subgraphs_per_iteration=4,
                            max_iterations=3, extraction=ExtractionStrategy.DELAY,
                            expansion=ExpansionStrategy.PATH,
                            track_estimation_error=False)
        result = IsdcScheduler(config).schedule(build_ml_core_datapath1())
        assert result.final_report.num_registers <= result.initial_report.num_registers

    def test_closed_form_model_variant(self):
        config = IsdcConfig(clock_period_ps=2500.0, subgraphs_per_iteration=4,
                            max_iterations=3, use_characterized_delays=False,
                            track_estimation_error=False)
        result = IsdcScheduler(config).schedule(build_ml_core_datapath1())
        assert result.iterations >= 1

    def test_crc32_collapses_to_few_stages(self):
        config = IsdcConfig(clock_period_ps=2500.0, subgraphs_per_iteration=16,
                            max_iterations=10, track_estimation_error=False)
        result = IsdcScheduler(config).schedule(build_crc32(num_steps=16))
        assert result.final_report.num_stages <= result.initial_report.num_stages
        assert result.final_report.num_registers < result.initial_report.num_registers

    def test_iteration_cap_respected(self):
        config = IsdcConfig(clock_period_ps=2500.0, subgraphs_per_iteration=2,
                            max_iterations=2, track_estimation_error=False)
        result = IsdcScheduler(config).schedule(build_ml_core_datapath1())
        assert result.iterations <= 2
        assert len(result.history) <= 3
