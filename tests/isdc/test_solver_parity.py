"""Incremental re-solves must not change any ISDC result.

The tentpole guarantee: ``solver="incremental"`` (persistent problem, patched
LP bounds, warm-started repair) produces byte-identical schedules, iteration
histories and serialized JSON to ``solver="full"`` (rebuild every iteration)
on every design of the arith + misc suites -- the same spirit as the
``jobs=1 == jobs=4`` determinism test.
"""

import dataclasses
import json
import pickle

import pytest

from repro.designs.suite import table1_suite
from repro.isdc.config import IsdcConfig
from repro.isdc.scheduler import IsdcScheduler

# The arith suite designs plus the misc-package design, by Table-I row name.
ARITH_MISC_DESIGNS = (
    "rrot",
    "binary divide",
    "float32 fast rsqrt",
    "fpexp 32",
    "internal datapath",
)


def _case(name):
    return next(case for case in table1_suite() if case.name == name)


def _run(name: str, solver: str, backend: str = "estimator"):
    case = _case(name)
    config = IsdcConfig(clock_period_ps=case.clock_period_ps,
                        subgraphs_per_iteration=4, max_iterations=3,
                        patience=3, track_estimation_error=False,
                        use_characterized_delays=(backend == "local"),
                        backend=backend, solver=solver)
    scheduler = IsdcScheduler(config)
    result = scheduler.schedule(case.build())
    if hasattr(scheduler.feedback.backend, "close"):
        scheduler.feedback.backend.close()
    return result, scheduler


def _canonical_history(result):
    """The history with wall-clock fields zeroed (everything else compared)."""
    return [dataclasses.replace(record, runtime_s=0.0, solver_runtime_s=0.0,
                                synthesis_runtime_s=0.0)
            for record in result.history]


def _canonical_json(result):
    """Serialized run outcome with the wall-clock (and knob) fields dropped."""
    payload = {
        "design": result.design,
        "initial_stages": sorted(result.initial_schedule.stages.items()),
        "final_stages": sorted(result.final_schedule.stages.items()),
        "iterations": result.iterations,
        "subgraphs_evaluated": result.subgraphs_evaluated,
        "initial_registers": result.initial_report.num_registers,
        "final_registers": result.final_report.num_registers,
        "final_slack_ps": result.final_report.slack_ps,
        "history": [dataclasses.asdict(record)
                    for record in _canonical_history(result)],
    }
    return json.dumps(payload, sort_keys=True)


@pytest.mark.parametrize("design", ARITH_MISC_DESIGNS)
def test_incremental_matches_full_on_arith_misc(design):
    full, _ = _run(design, solver="full")
    incremental, scheduler = _run(design, solver="incremental")

    assert pickle.dumps(_canonical_history(full)) == \
        pickle.dumps(_canonical_history(incremental))
    assert full.initial_schedule.stages == incremental.initial_schedule.stages
    assert full.final_schedule.stages == incremental.final_schedule.stages
    assert _canonical_json(full) == _canonical_json(incremental)

    # The knob is faithfully recorded on the result.
    assert full.solver == "full"
    assert incremental.solver == "incremental"
    # The incremental engine was exercised (patched or structural fallback,
    # but always through the persistent problem).
    solver = scheduler.last_solver
    assert solver.incremental_solves + solver.fallback_solves == \
        incremental.iterations


def test_incremental_matches_full_through_real_synthesis():
    """Parity also holds under the full local synthesis backend."""
    full, _ = _run("rrot", solver="full", backend="local")
    incremental, _ = _run("rrot", solver="incremental", backend="local")
    assert pickle.dumps(_canonical_history(full)) == \
        pickle.dumps(_canonical_history(incremental))
    assert full.final_schedule.stages == incremental.final_schedule.stages
    assert _canonical_json(full) == _canonical_json(incremental)


def test_incremental_patches_bounds_on_a_multi_iteration_design():
    """The delta path is really taken: bounds are patched, not rebuilt."""
    result, scheduler = _run("fpexp 32", solver="incremental")
    assert result.iterations >= 2
    assert scheduler.last_problem.bound_patches > 0
    assert scheduler.last_solver.incremental_solves >= 1


def test_weights_and_users_computed_once_per_graph(monkeypatch):
    """Satellite regression: register_weights/users_map run once per run.

    The persistent ScheduleProblem owns both; neither the baseline schedule
    nor any re-solve iteration may recompute them.
    """
    import repro.sdc.problem as problem_module

    calls = {"register_weights": 0, "users_map": 0}
    real_weights = problem_module.register_weights
    real_users = problem_module.users_map

    def counting_weights(graph):
        calls["register_weights"] += 1
        return real_weights(graph)

    def counting_users(graph):
        calls["users_map"] += 1
        return real_users(graph)

    monkeypatch.setattr(problem_module, "register_weights", counting_weights)
    monkeypatch.setattr(problem_module, "users_map", counting_users)

    result, _ = _run("rrot", solver="incremental")
    assert result.iterations >= 2
    assert calls == {"register_weights": 1, "users_map": 1}

    result, _ = _run("rrot", solver="full")
    assert result.iterations >= 2
    assert calls == {"register_weights": 2, "users_map": 2}
