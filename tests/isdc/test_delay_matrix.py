"""Tests for the ISDC delay matrix (Algorithm 1)."""

import pytest

from repro.isdc.delay_matrix import DelayMatrix
from repro.sdc.delays import node_delays
from repro.tech.delay_model import OperatorModel


@pytest.fixture
def matrix(adder_chain_graph):
    delays = node_delays(adder_chain_graph, OperatorModel(pessimism=1.0))
    return DelayMatrix.from_graph(adder_chain_graph, delays), delays


class TestInitialisation:
    def test_diagonal_is_individual_delay(self, matrix, adder_chain_graph):
        delay_matrix, delays = matrix
        for node in adder_chain_graph.nodes():
            assert delay_matrix.individual_delay(node.node_id) == \
                pytest.approx(delays[node.node_id])

    def test_connected_pairs_hold_path_sums(self, matrix, adder_chain_graph):
        delay_matrix, delays = matrix
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        expected = delays[names["s1"]] + delays[names["s2"]] + delays[names["s3"]]
        assert delay_matrix.get(names["s1"], names["s3"]) == pytest.approx(expected)

    def test_unconnected_pairs(self, matrix, adder_chain_graph):
        delay_matrix, _ = matrix
        params = [p.node_id for p in adder_chain_graph.parameters()]
        assert not delay_matrix.is_connected(params[0], params[1])


class TestSubgraphUpdate:
    def test_update_lowers_covered_pairs(self, matrix, adder_chain_graph):
        delay_matrix, _ = matrix
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        before = delay_matrix.get(names["s1"], names["s2"])
        changed = delay_matrix.update_with_subgraph([names["s1"], names["s2"]], 100.0)
        assert changed > 0
        assert delay_matrix.get(names["s1"], names["s2"]) == 100.0
        assert delay_matrix.get(names["s1"], names["s2"]) < before

    def test_update_never_raises_estimates(self, matrix, adder_chain_graph):
        delay_matrix, _ = matrix
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        delay_matrix.update_with_subgraph([names["s1"], names["s2"]], 100.0)
        changed = delay_matrix.update_with_subgraph([names["s1"], names["s2"]], 500.0)
        assert changed == 0
        assert delay_matrix.get(names["s1"], names["s2"]) == 100.0

    def test_update_does_not_touch_uncovered_pairs(self, matrix, adder_chain_graph):
        delay_matrix, _ = matrix
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        untouched = delay_matrix.get(names["s2"], names["s3"])
        delay_matrix.update_with_subgraph([names["s1"], names["s2"]], 1.0)
        assert delay_matrix.get(names["s2"], names["s3"]) == pytest.approx(untouched)

    def test_update_preserves_disconnection(self, matrix, adder_chain_graph):
        delay_matrix, _ = matrix
        params = [p.node_id for p in adder_chain_graph.parameters()]
        delay_matrix.update_with_subgraph(params, 1.0)
        assert not delay_matrix.is_connected(params[0], params[1])

    def test_batch_update(self, matrix, adder_chain_graph):
        delay_matrix, _ = matrix
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        total = delay_matrix.update_with_feedback([
            ([names["s1"], names["s2"]], 200.0),
            ([names["s2"], names["s3"]], 250.0),
        ])
        assert total >= 2

    def test_copy_is_independent(self, matrix, adder_chain_graph):
        delay_matrix, _ = matrix
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        clone = delay_matrix.copy()
        clone.update_with_subgraph([names["s1"], names["s2"]], 1.0)
        assert delay_matrix.get(names["s1"], names["s2"]) > 1.0


class TestQueries:
    def test_connected_pairs_over_threshold(self, matrix):
        delay_matrix, _ = matrix
        assert delay_matrix.connected_pairs_over(0.0) > 0
        assert delay_matrix.connected_pairs_over(1e12) == 0


class TestDirtyTracking:
    def test_fresh_matrix_is_clean(self, matrix):
        delay_matrix, _ = matrix
        assert delay_matrix.dirty_pairs() == set()

    def test_subgraph_update_records_lowered_pairs(self, matrix,
                                                   adder_chain_graph):
        delay_matrix, _ = matrix
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        delay_matrix.update_with_subgraph([names["s1"], names["s2"]], 100.0)
        dirty = delay_matrix.dirty_pairs()
        assert (names["s1"], names["s2"]) in dirty
        # Only covered, actually-lowered pairs are recorded.
        assert all(u in names.values() and v in names.values()
                   for u, v in dirty)

    def test_no_op_update_records_nothing(self, matrix, adder_chain_graph):
        delay_matrix, _ = matrix
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        delay_matrix.update_with_subgraph([names["s1"], names["s2"]], 100.0)
        delay_matrix.consume_dirty()
        delay_matrix.update_with_subgraph([names["s1"], names["s2"]], 500.0)
        assert delay_matrix.dirty_pairs() == set()

    def test_consume_drains_the_tracker(self, matrix, adder_chain_graph):
        delay_matrix, _ = matrix
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        delay_matrix.set(names["s1"], names["s2"], 42.0)
        consumed = delay_matrix.consume_dirty()
        assert (names["s1"], names["s2"]) in consumed
        assert delay_matrix.dirty_pairs() == set()

    def test_propagation_records_its_changes(self, matrix, adder_chain_graph):
        from repro.isdc.reformulate import propagate_delays

        delay_matrix, _ = matrix
        names = {n.name: n.node_id for n in adder_chain_graph.nodes()}
        delay_matrix.update_with_subgraph([names["s1"], names["s2"]], 1.0)
        delay_matrix.consume_dirty()
        changed = propagate_delays(delay_matrix)
        assert changed > 0
        dirty = delay_matrix.dirty_pairs()
        # Every change is recorded; a pair lowered by both sweeps dedupes.
        assert 0 < len(dirty) <= changed
        assert all(u in delay_matrix.index_of and v in delay_matrix.index_of
                   for u, v in dirty)
