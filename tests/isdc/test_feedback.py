"""Tests for the feedback engine (downstream evaluation of subgraphs)."""

from repro.isdc.config import IsdcConfig
from repro.isdc.delay_matrix import DelayMatrix
from repro.isdc.extraction import SubgraphExtractor
from repro.isdc.feedback import FeedbackEngine
from repro.sdc.delays import node_delays
from repro.sdc.scheduler import SdcScheduler
from repro.tech.delay_model import OperatorModel


def _schedule_and_matrix(graph, clock=1500.0, model=None):
    model = model or OperatorModel(pessimism=1.0)
    result = SdcScheduler(model, clock_period_ps=clock).schedule(graph)
    matrix = DelayMatrix(graph, result.delay_matrix.copy(), dict(result.index_of))
    return result.schedule, matrix


def test_feedback_records_are_consistent(adder_chain_graph, library):
    schedule, matrix = _schedule_and_matrix(adder_chain_graph)
    config = IsdcConfig(clock_period_ps=1500.0, subgraphs_per_iteration=8)
    subgraphs = SubgraphExtractor(config).extract(schedule, matrix)
    engine = FeedbackEngine(library)
    feedback = engine.evaluate(adder_chain_graph, subgraphs)
    assert len(feedback) == len(subgraphs)
    for record in feedback:
        assert record.delay_ps > 0
        assert record.num_gates > 0
        assert record.node_ids
        assert record.estimated_delay_ps == record.candidate.delay_ps


def test_feedback_delay_never_exceeds_estimate_sum(adder_chain_graph, library):
    """Measured subgraph delays must not exceed the sum of characterised
    per-operation delays -- the gap between the two is the recoverable slack."""
    from repro.synth.estimator import CharacterizedOperatorModel

    model = CharacterizedOperatorModel(library, pessimism=1.0)
    schedule, matrix = _schedule_and_matrix(adder_chain_graph, clock=2000.0,
                                            model=model)
    config = IsdcConfig(clock_period_ps=2000.0, subgraphs_per_iteration=8)
    subgraphs = SubgraphExtractor(config).extract(schedule, matrix)
    engine = FeedbackEngine(library)
    for record in engine.evaluate(adder_chain_graph, subgraphs):
        naive_sum = sum(matrix.individual_delay(nid) for nid in record.node_ids)
        assert record.delay_ps <= naive_sum * 1.01 + 1e-6


def test_cache_reused_across_iterations(adder_chain_graph, library):
    schedule, matrix = _schedule_and_matrix(adder_chain_graph)
    config = IsdcConfig(clock_period_ps=1500.0, subgraphs_per_iteration=4)
    extractor = SubgraphExtractor(config)
    engine = FeedbackEngine(library)
    first = extractor.extract(schedule, matrix)
    engine.evaluate(adder_chain_graph, first)
    misses_after_first = engine.evaluations
    engine.evaluate(adder_chain_graph, first)
    assert engine.evaluations == misses_after_first
    assert engine.cache_hits >= len(first)
