"""Sparse vs dense Algorithm 2 re-propagation parity.

When the delay matrix carries the connectivity pattern the sparse sweep
produced, :func:`~repro.isdc.reformulate.propagate_delays` iterates over
connected pairs only -- which must lower *exactly* the entries the dense
whole-row sweeps lower, to the same floats, with the same dirty set and the
same change count.  These tests run both paths side by side on generated
designs under feedback, and pin down the pattern's lifecycle (sharing across
:meth:`DelayMatrix.copy`, invalidation on out-of-pattern edits).
"""

import random

import numpy as np
import pytest

from repro.designs.generator import GeneratorParams, build_generated_design
from repro.isdc.delay_matrix import DelayMatrix
from repro.isdc.reformulate import propagate_delays
from repro.kernel import kernel_config, set_kernel_config
from repro.sdc.delays import NOT_CONNECTED, node_delays
from repro.tech.delay_model import OperatorModel


@pytest.fixture(autouse=True)
def _restore_kernel_config():
    saved = kernel_config()
    yield
    set_kernel_config(saved)


def _graph(seed: int = 6):
    return build_generated_design(GeneratorParams(seed=seed, depth=8,
                                                  width=6))


def _matrix(graph, mode: str) -> DelayMatrix:
    """A fresh matrix built under a forced dense or sparse kernel config."""
    set_kernel_config(kernel_config(), matrix_mode=mode)
    delays = node_delays(graph, OperatorModel())
    return DelayMatrix.from_graph(graph, delays)


def _apply_feedback(matrix: DelayMatrix, seed: int = 0, rounds: int = 4
                    ) -> None:
    """Deterministic random subgraph measurements, identical per seed."""
    rng = random.Random(seed)
    ids = matrix.node_order()
    for _ in range(rounds):
        covered = rng.sample(ids, k=min(6, len(ids)))
        reference = max(matrix.individual_delay(nid) for nid in covered)
        matrix.update_with_subgraph(covered, reference * 1.5)


@pytest.mark.parametrize("seed", [6, 17, 40])
class TestSparseDensePropagationParity:
    def test_same_matrix_same_dirty_set_same_count(self, seed):
        graph = _graph(seed)
        sparse_matrix = _matrix(graph, "sparse")
        assert sparse_matrix.connectivity_pattern() is not None
        dense_matrix = _matrix(graph, "dense")
        assert dense_matrix.connectivity_pattern() is None
        assert np.array_equal(sparse_matrix.matrix, dense_matrix.matrix)

        _apply_feedback(sparse_matrix, seed=seed)
        _apply_feedback(dense_matrix, seed=seed)
        assert sparse_matrix.dirty_pairs() == dense_matrix.dirty_pairs()

        set_kernel_config(kernel_config(), matrix_mode="sparse",
                          min_sparse_nodes=0)
        changed_sparse = propagate_delays(sparse_matrix)
        set_kernel_config(kernel_config(), matrix_mode="dense")
        changed_dense = propagate_delays(dense_matrix)

        assert changed_sparse == changed_dense
        assert np.array_equal(sparse_matrix.matrix, dense_matrix.matrix)
        assert sparse_matrix.dirty_pairs() == dense_matrix.dirty_pairs()

    def test_sparse_sweep_never_connects_new_pairs(self, seed):
        graph = _graph(seed)
        matrix = _matrix(graph, "sparse")
        holes = matrix.matrix == NOT_CONNECTED
        _apply_feedback(matrix, seed=seed)
        set_kernel_config(kernel_config(), matrix_mode="sparse",
                          min_sparse_nodes=0)
        propagate_delays(matrix)
        assert np.array_equal(matrix.matrix == NOT_CONNECTED, holes)


class TestPatternLifecycle:
    def test_copy_shares_order_and_pattern(self):
        matrix = _matrix(_graph(), "sparse")
        matrix.node_order()  # force the derived order into existence
        duplicate = matrix.copy()
        assert duplicate._order is matrix._order
        assert duplicate._pattern is matrix._pattern
        assert duplicate.connectivity_pattern() is \
            matrix.connectivity_pattern()
        # The matrix itself must NOT be shared: feedback on the copy may not
        # leak back into the source.
        duplicate.matrix[0, 0] = -123.0
        assert matrix.matrix[0, 0] != -123.0

    def test_descendant_pattern_is_cached_and_shared(self):
        matrix = _matrix(_graph(), "sparse")
        first = matrix.descendant_pattern()
        assert first is matrix.descendant_pattern()
        assert matrix.copy().descendant_pattern() is first

    def test_lowering_a_connected_entry_keeps_the_pattern(self):
        matrix = _matrix(_graph(), "sparse")
        ids = matrix.node_order()
        u, v = next((u, v) for u in ids for v in ids
                    if u != v and matrix.is_connected(u, v))
        matrix.set(u, v, matrix.get(u, v) * 0.5)
        assert matrix.connectivity_pattern() is not None

    def test_disconnecting_an_entry_drops_the_pattern(self):
        matrix = _matrix(_graph(), "sparse")
        ids = matrix.node_order()
        u, v = next((u, v) for u in ids for v in ids
                    if u != v and matrix.is_connected(u, v))
        matrix.set(u, v, NOT_CONNECTED)
        assert matrix.connectivity_pattern() is None
        assert matrix.descendant_pattern() is None

    def test_structural_edit_invalidates_the_pattern(self):
        from repro.ir.ops import OpKind

        graph = _graph()
        matrix = _matrix(graph, "sparse")
        assert matrix.connectivity_pattern() is not None
        ids = graph.node_ids()
        graph.add_node(OpKind.ADD, (ids[0], ids[1]))
        # The graph's view moved on, so the stale pattern must not be served.
        assert matrix.connectivity_pattern() is None

    def test_pattern_survives_feedback_lowering(self):
        matrix = _matrix(_graph(), "sparse")
        _apply_feedback(matrix)
        assert matrix.connectivity_pattern() is not None
