"""Tests for the ISDC configuration object."""

import pytest

from repro.isdc.config import ExpansionStrategy, ExtractionStrategy, IsdcConfig


def test_defaults_match_paper_table1_setting():
    config = IsdcConfig()
    assert config.subgraphs_per_iteration == 16
    assert config.max_iterations == 15
    assert config.extraction is ExtractionStrategy.FANOUT
    assert config.expansion is ExpansionStrategy.WINDOW


def test_string_strategies_coerced():
    config = IsdcConfig(extraction="delay", expansion="cone")
    assert config.extraction is ExtractionStrategy.DELAY
    assert config.expansion is ExpansionStrategy.CONE


@pytest.mark.parametrize("kwargs", [
    {"clock_period_ps": 0},
    {"clock_period_ps": -1},
    {"subgraphs_per_iteration": 0},
    {"max_iterations": 0},
    {"patience": 0},
])
def test_invalid_values_rejected(kwargs):
    with pytest.raises(ValueError):
        IsdcConfig(**kwargs)


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        IsdcConfig(extraction="magic")
