"""Tests for subgraph extraction: candidates, Eq. 3 scoring, cones, windows."""

import pytest

from repro.ir.builder import GraphBuilder
from repro.isdc.config import ExpansionStrategy, ExtractionStrategy, IsdcConfig
from repro.isdc.delay_matrix import DelayMatrix
from repro.isdc.extraction import (
    SubgraphExtractor,
    cone_leaves,
    enumerate_candidate_paths,
    fanout_score,
    in_stage_ancestors,
    registered_nodes,
)
from repro.sdc.delays import node_delays
from repro.sdc.scheduler import Schedule
from repro.tech.delay_model import OperatorModel


@pytest.fixture
def staged_design():
    """A two-stage schedule with known structure.

    Stage 0: a1 = x + y, a2 = a1 ^ z, wide = a1 * x (all 16-bit);
    stage 1: final = wide + a2.  Both ``a2`` and ``wide`` are registered.
    """
    builder = GraphBuilder("staged")
    x = builder.param("x", 16)
    y = builder.param("y", 16)
    z = builder.param("z", 16)
    a1 = builder.add(x, y, name="a1")
    a2 = builder.xor(a1, z, name="a2")
    wide = builder.mul(a1, x, name="wide")
    final = builder.add(wide, a2, name="final")
    out = builder.output(final, name="out")
    graph = builder.graph
    stages = {x.node_id: 0, y.node_id: 0, z.node_id: 0, a1.node_id: 0,
              a2.node_id: 0, wide.node_id: 0, final.node_id: 1, out.node_id: 1}
    schedule = Schedule(graph=graph, clock_period_ps=2500.0, stages=stages)
    delays = node_delays(graph, OperatorModel(pessimism=1.0))
    matrix = DelayMatrix.from_graph(graph, delays)
    names = {n.name: n.node_id for n in graph.nodes()}
    return schedule, matrix, names


class TestRegisteredNodes:
    def test_only_boundary_crossing_results(self, staged_design):
        schedule, _, names = staged_design
        registered = set(registered_nodes(schedule))
        assert names["a2"] in registered
        assert names["wide"] in registered
        assert names["a1"] not in registered   # consumed within stage 0
        assert names["final"] not in registered  # consumed by OUTPUT in-stage
        assert names["out"] in registered        # the pipeline's output flop

    def test_sources_never_registered(self, staged_design):
        schedule, _, names = staged_design
        assert names["a1"] not in registered_nodes(schedule)
        for param in schedule.graph.parameters():
            assert param.node_id not in registered_nodes(schedule)


class TestConesAndWindows:
    def test_in_stage_ancestors(self, staged_design):
        schedule, _, names = staged_design
        cone = in_stage_ancestors(schedule, names["wide"])
        assert cone == {names["wide"], names["a1"]}

    def test_cone_leaves_are_outside(self, staged_design):
        schedule, _, names = staged_design
        cone = in_stage_ancestors(schedule, names["wide"])
        leaves = cone_leaves(schedule.graph, cone)
        assert names["wide"] not in leaves
        assert all(leaf not in cone for leaf in leaves)

    def test_window_merges_overlapping_cones(self, staged_design):
        schedule, matrix, names = staged_design
        config = IsdcConfig(clock_period_ps=2500.0, expansion=ExpansionStrategy.WINDOW)
        extractor = SubgraphExtractor(config)
        candidates = enumerate_candidate_paths(schedule, matrix,
                                               ExtractionStrategy.FANOUT, 2500.0)
        wide_candidate = next(c for c in candidates if c.sink == names["wide"])
        window = extractor.expand(schedule, wide_candidate)
        # a2's cone shares the leaf x/y producer a1's inputs with wide's cone,
        # so the window swallows both registered roots of stage 0.
        assert names["wide"] in window and names["a2"] in window

    def test_path_expansion_is_thinner_than_cone(self, staged_design):
        schedule, matrix, names = staged_design
        candidates = enumerate_candidate_paths(schedule, matrix,
                                               ExtractionStrategy.FANOUT, 2500.0)
        wide_candidate = next(c for c in candidates if c.sink == names["wide"])
        path_set = SubgraphExtractor(IsdcConfig(
            clock_period_ps=2500.0, expansion=ExpansionStrategy.PATH)).expand(
                schedule, wide_candidate)
        cone_set = SubgraphExtractor(IsdcConfig(
            clock_period_ps=2500.0, expansion=ExpansionStrategy.CONE)).expand(
                schedule, wide_candidate)
        assert path_set <= cone_set


class TestScoring:
    def test_fanout_score_prefers_fewer_users(self, staged_design):
        schedule, _, names = staged_design
        graph = schedule.graph
        # Same width, same delay: the value with fewer consumers scores higher.
        single_user = fanout_score(graph, names["wide"], 1000.0, 2500.0)
        builder_score = fanout_score(graph, names["a2"], 1000.0, 2500.0)
        assert graph.num_users(names["wide"]) == graph.num_users(names["a2"]) == 1
        assert single_user == pytest.approx(builder_score)

    def test_fanout_score_delay_is_tie_breaker_only(self, staged_design):
        schedule, _, names = staged_design
        graph = schedule.graph
        low = fanout_score(graph, names["wide"], 10.0, 2500.0)
        high = fanout_score(graph, names["wide"], 2490.0, 2500.0)
        assert high > low
        assert high - low < 1.0

    def test_fanout_score_preserves_ordering_above_clock_period(self, staged_design):
        """Estimates beyond the clock period must keep ranking by delay, not
        collapse onto one clamped ratio (the seed flattened both to 0.999)."""
        schedule, _, names = staged_design
        graph = schedule.graph
        over = fanout_score(graph, names["wide"], 3000.0, 2500.0)
        further_over = fanout_score(graph, names["wide"], 5000.0, 2500.0)
        under = fanout_score(graph, names["wide"], 2400.0, 2500.0)
        assert further_over > over > under

    def test_delay_strategy_orders_by_delay(self, staged_design):
        schedule, matrix, names = staged_design
        candidates = enumerate_candidate_paths(schedule, matrix,
                                               ExtractionStrategy.DELAY, 2500.0)
        delays = [c.delay_ps for c in candidates]
        assert delays == sorted(delays, reverse=True)
        assert candidates[0].sink == names["wide"]  # mul chain is the slowest


class TestTieBreaking:
    def test_equal_delay_sources_pick_lowest_node_id(self):
        """max() over equal-delay sources must tie-break on sorted node ids,
        not on set iteration order."""
        builder = GraphBuilder("ties")
        x = builder.param("x", 8)
        y = builder.param("y", 8)
        left = builder.add(x, y, name="left")
        right = builder.add(y, x, name="right")
        root = builder.xor(left, right, name="root")
        out = builder.output(root, name="out")
        graph = builder.graph
        stages = {n.node_id: 0 for n in graph.nodes()}
        stages[out.node_id] = 1  # `root` crosses the boundary -> registered
        schedule = Schedule(graph=graph, clock_period_ps=2500.0, stages=stages)
        delays = node_delays(graph, OperatorModel(pessimism=1.0))
        matrix = DelayMatrix.from_graph(graph, delays)
        # Both in-stage ancestors of `root` carry the same delay estimate.
        assert matrix.get(left.node_id, root.node_id) == \
            pytest.approx(matrix.get(right.node_id, root.node_id))
        for _ in range(3):
            candidates = enumerate_candidate_paths(
                schedule, matrix, ExtractionStrategy.DELAY, 2500.0)
            root_candidate = next(c for c in candidates if c.sink == root.node_id)
            assert root_candidate.source == min(left.node_id, right.node_id)


class TestExtractor:
    def test_respects_subgraph_budget(self, staged_design):
        schedule, matrix, _ = staged_design
        config = IsdcConfig(clock_period_ps=2500.0, subgraphs_per_iteration=1)
        selected = SubgraphExtractor(config).extract(schedule, matrix)
        assert len(selected) == 1

    def test_deduplicates_identical_subgraphs(self, staged_design):
        schedule, matrix, _ = staged_design
        config = IsdcConfig(clock_period_ps=2500.0, subgraphs_per_iteration=16,
                            expansion=ExpansionStrategy.WINDOW)
        selected = SubgraphExtractor(config).extract(schedule, matrix)
        node_sets = [frozenset(nodes) for _, nodes in selected]
        assert len(node_sets) == len(set(node_sets))

    def test_subgraphs_never_contain_sources(self, staged_design):
        schedule, matrix, _ = staged_design
        config = IsdcConfig(clock_period_ps=2500.0, subgraphs_per_iteration=16,
                            expansion=ExpansionStrategy.CONE)
        for _, nodes in SubgraphExtractor(config).extract(schedule, matrix):
            for node_id in nodes:
                assert not schedule.graph.node(node_id).is_source

    def test_subgraphs_stay_within_one_stage(self, staged_design):
        schedule, matrix, _ = staged_design
        config = IsdcConfig(clock_period_ps=2500.0, subgraphs_per_iteration=16,
                            expansion=ExpansionStrategy.WINDOW)
        for candidate, nodes in SubgraphExtractor(config).extract(schedule, matrix):
            stages = {schedule.stage_of(nid) for nid in nodes}
            assert stages == {candidate.stage}
