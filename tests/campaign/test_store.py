"""Tests for the JSONL run store: checkpointing, resume, corruption handling."""

import json

import pytest

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import RunStore, StoreMismatchError


def _spec(**overrides):
    defaults = dict(name="store-test", designs=["rrot"],
                    extraction=["fanout", "delay"], subgraph_counts=[4, 8],
                    max_iterations=2, backend="estimator",
                    use_characterized_delays=False)
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def _fake_result(job):
    return {"design": job.design, "final": {"registers": 10 + job.index}}


def test_fresh_store_writes_header(tmp_path):
    spec = _spec()
    store = RunStore(tmp_path / "run.jsonl")
    store.open(spec)
    header = json.loads((tmp_path / "run.jsonl").read_text().splitlines()[0])
    assert header["kind"] == "campaign-header"
    assert header["key"] == spec.fingerprint()
    assert header["body"]["fingerprint"] == spec.fingerprint()
    assert header["body"]["num_jobs"] == len(spec.jobs())


def _legacy_store_file(path, spec, jobs_with_results):
    """Write a pre-unification schema-1 run store file."""
    lines = [json.dumps({
        "kind": "header", "schema": 1, "name": spec.name,
        "fingerprint": spec.fingerprint(), "num_jobs": len(spec.jobs()),
        "spec": spec.to_dict()})]
    for job, result in jobs_with_results:
        lines.append(json.dumps({
            "kind": "job", "job_id": job.job_id, "design": job.design,
            "result": result, "runtime_s": 0.25}))
    path.write_text("\n".join(lines) + "\n")


def test_legacy_schema1_store_loads_readonly(tmp_path):
    spec = _spec()
    path = tmp_path / "legacy.jsonl"
    jobs = spec.jobs()
    _legacy_store_file(path, spec, [(job, _fake_result(job))
                                    for job in jobs[:2]])
    before = path.read_bytes()
    store = RunStore.load(path)
    assert store.header["fingerprint"] == spec.fingerprint()
    assert store.completed == {jobs[0].job_id, jobs[1].job_id}
    assert store.results[jobs[0].job_id]["result"] == _fake_result(jobs[0])
    assert path.read_bytes() == before  # analysis never modifies the file


def test_legacy_schema1_store_resumes_via_migration(tmp_path):
    spec = _spec()
    path = tmp_path / "legacy.jsonl"
    jobs = spec.jobs()
    _legacy_store_file(path, spec, [(job, _fake_result(job))
                                    for job in jobs[:2]])
    resumed = RunStore(path)
    resumed.open(spec, resume=True)
    assert resumed.completed == {jobs[0].job_id, jobs[1].job_id}
    assert resumed.missing(spec) == jobs[2:]
    # The file is now in the unified format and keeps working.
    first = json.loads(path.read_text().splitlines()[0])
    assert first["kind"] == "campaign-header"
    resumed.record(jobs[2], _fake_result(jobs[2]), runtime_s=0.1)
    reread = RunStore.load(path)
    assert reread.completed == {job.job_id for job in jobs[:3]}


def test_legacy_resume_still_rejects_a_different_campaign(tmp_path):
    spec = _spec()
    path = tmp_path / "legacy.jsonl"
    _legacy_store_file(path, spec, [])
    with pytest.raises(StoreMismatchError):
        RunStore(path).open(_spec(max_iterations=3), resume=True)


def test_final_payload_survives_compaction(tmp_path):
    from repro.store import ArtifactStore

    spec = _spec()
    path = tmp_path / "run.jsonl"
    store = RunStore(path)
    store.open(spec)
    jobs = spec.jobs()
    for job in jobs:
        store.record(job, _fake_result(job), runtime_s=0.5)
    # Duplicate a checkpoint (a resumed worker re-recording) to give the
    # compactor something to drop.
    store.record(jobs[0], _fake_result(jobs[0]), runtime_s=0.9)
    payload = store.final_payload(spec)

    compactor = ArtifactStore(path).open_for_append()
    report = compactor.compact()
    assert report.dropped == 1

    resumed = RunStore(path)
    resumed.open(spec, resume=True)
    assert resumed.missing(spec) == []
    assert json.dumps(resumed.final_payload(spec), sort_keys=True) == \
        json.dumps(payload, sort_keys=True)


def test_records_append_and_reload(tmp_path):
    spec = _spec()
    path = tmp_path / "run.jsonl"
    store = RunStore(path)
    store.open(spec)
    jobs = spec.jobs()
    for job in jobs[:2]:
        store.record(job, _fake_result(job), runtime_s=0.5)

    resumed = RunStore(path)
    resumed.open(spec, resume=True)
    assert resumed.completed == {jobs[0].job_id, jobs[1].job_id}
    assert resumed.missing(spec) == jobs[2:]
    assert resumed.results[jobs[0].job_id]["result"] == _fake_result(jobs[0])


def test_existing_store_refused_without_resume(tmp_path):
    spec = _spec()
    path = tmp_path / "run.jsonl"
    RunStore(path).open(spec)
    with pytest.raises(FileExistsError):
        RunStore(path).open(spec)


def test_resume_rejects_a_different_campaign(tmp_path):
    path = tmp_path / "run.jsonl"
    RunStore(path).open(_spec())
    with pytest.raises(StoreMismatchError):
        RunStore(path).open(_spec(max_iterations=3), resume=True)


def test_corrupted_trailing_line_is_truncated(tmp_path):
    spec = _spec()
    path = tmp_path / "run.jsonl"
    store = RunStore(path)
    store.open(spec)
    jobs = spec.jobs()
    for job in jobs[:3]:
        store.record(job, _fake_result(job), runtime_s=0.1)

    # A kill mid-append leaves a torn final line without a newline.
    with path.open("a") as handle:
        handle.write('{"kind": "job", "job_id": "torn')

    resumed = RunStore(path)
    resumed.open(spec, resume=True)
    assert resumed.completed == {job.job_id for job in jobs[:3]}
    # The torn bytes are gone, so future appends start on a clean boundary.
    assert not path.read_text().rstrip("\n").splitlines()[-1].startswith(
        '{"kind": "job", "job_id": "torn')
    resumed.record(jobs[3], _fake_result(jobs[3]), runtime_s=0.1)
    reread = RunStore(path)
    reread.open(spec, resume=True)
    assert reread.completed == {job.job_id for job in jobs}


def test_corrupt_final_line_with_newline_is_also_dropped(tmp_path):
    spec = _spec()
    path = tmp_path / "run.jsonl"
    store = RunStore(path)
    store.open(spec)
    jobs = spec.jobs()
    store.record(jobs[0], _fake_result(jobs[0]), runtime_s=0.1)
    with path.open("a") as handle:
        handle.write("{broken json}\n")
    resumed = RunStore(path)
    resumed.open(spec, resume=True)
    assert resumed.completed == {jobs[0].job_id}


def test_corruption_before_the_tail_is_an_error(tmp_path):
    spec = _spec()
    path = tmp_path / "run.jsonl"
    store = RunStore(path)
    store.open(spec)
    jobs = spec.jobs()
    store.record(jobs[0], _fake_result(jobs[0]), runtime_s=0.1)
    lines = path.read_text().splitlines()
    lines.insert(1, "{garbage in the middle}")
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="corrupt at line"):
        RunStore(path).open(spec, resume=True)


def test_final_payload_is_ordered_and_wall_clock_free(tmp_path):
    spec = _spec()
    store = RunStore(tmp_path / "run.jsonl")
    store.open(spec)
    jobs = spec.jobs()
    # Record in reverse completion order; the payload must follow spec order.
    for job in reversed(jobs):
        store.record(job, _fake_result(job), runtime_s=123.0)
    payload = store.final_payload(spec)
    assert [entry["job_id"] for entry in payload["jobs"]] == \
        [job.job_id for job in jobs]
    assert "runtime_s" not in json.dumps(payload)


def test_final_payload_requires_completion(tmp_path):
    spec = _spec()
    store = RunStore(tmp_path / "run.jsonl")
    store.open(spec)
    with pytest.raises(KeyError):
        store.final_payload(spec)


def test_in_memory_store_supports_the_full_protocol():
    spec = _spec()
    store = RunStore()
    store.open(spec)
    for job in spec.jobs():
        store.record(job, _fake_result(job), runtime_s=0.0)
    assert store.final_payload(spec)["num_jobs"] == len(spec.jobs())
