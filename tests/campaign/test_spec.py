"""Tests for campaign specs: axis expansion, job identity, serialisation."""

import pytest

from repro.campaign.spec import CampaignSpec, quick_spec
from repro.isdc.config import IsdcConfig


def _small_spec(**overrides):
    defaults = dict(
        name="unit",
        designs=["rrot", "crc32"],
        extraction=["fanout", "delay"],
        subgraph_counts=[4, 8],
        max_iterations=2,
        backend="estimator",
        use_characterized_delays=False,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def test_jobs_are_the_ordered_cross_product():
    spec = _small_spec()
    jobs = spec.jobs()
    assert len(jobs) == 2 * 2 * 2  # designs x extraction x subgraph_counts
    assert [job.index for job in jobs] == list(range(len(jobs)))
    # Designs vary outermost, subgraph counts innermost.
    assert [job.design for job in jobs[:4]] == ["rrot"] * 4
    assert [job.config["subgraphs_per_iteration"] for job in jobs[:2]] == [4, 8]


def test_job_ids_are_content_addressed_and_stable():
    first = {job.job_id for job in _small_spec().jobs()}
    second = {job.job_id for job in _small_spec().jobs()}
    assert first == second
    assert len(first) == 8
    # Reordering an axis re-orders the work but never re-labels it.
    reordered = _small_spec(extraction=["delay", "fanout"])
    assert {job.job_id for job in reordered.jobs()} == first


def test_colliding_axis_points_deduplicate():
    """[None, X] where X is the design's own clock collapses to one job."""
    spec = _small_spec(designs=["rrot"], clock_periods_ps=[None, 2500.0])
    jobs = spec.jobs()
    assert len(jobs) == 4  # extraction x subgraph_counts, clock axis collapsed
    assert len({job.job_id for job in jobs}) == len(jobs)
    assert [job.index for job in jobs] == list(range(len(jobs)))


def test_none_clock_uses_the_design_default():
    spec = _small_spec(designs=["rrot"], clock_periods_ps=[None, 4000.0])
    clocks = {job.config["clock_period_ps"] for job in spec.jobs()}
    assert clocks == {2500.0, 4000.0}  # rrot's Table-I clock plus the override


def test_jobs_validate_through_isdc_config():
    with pytest.raises(ValueError):
        _small_spec(subgraph_counts=[0]).jobs()
    with pytest.raises(ValueError):
        _small_spec(solvers=["simulated-annealing"]).jobs()


def test_unknown_design_rejected_at_expansion():
    with pytest.raises(KeyError):
        _small_spec(designs=["not a benchmark"]).jobs()


def test_spec_round_trips_through_dict():
    spec = _small_spec()
    clone = CampaignSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.fingerprint() == spec.fingerprint()


def test_fingerprint_tracks_content():
    assert _small_spec().fingerprint() != \
        _small_spec(max_iterations=3).fingerprint()


def test_empty_axes_rejected():
    with pytest.raises(ValueError):
        CampaignSpec(designs=[])
    with pytest.raises(ValueError):
        _small_spec(extraction=[])


def test_quick_spec_is_valid_and_cheap():
    spec = quick_spec()
    jobs = spec.jobs()
    assert len(jobs) == 3 * 4  # 3 generated designs x 4 config points
    for job in jobs:
        config = job.build_config()
        assert isinstance(config, IsdcConfig)
        assert config.backend == "estimator"
        assert config.max_iterations <= 5


def test_job_config_round_trips_through_isdc_config():
    job = _small_spec().jobs()[0]
    assert IsdcConfig.from_payload(job.config).to_payload() == job.config
