"""Tests for the campaign executor: sharding, checkpointing, resume parity."""

import json
from pathlib import Path

from repro.campaign import RunStore, quick_spec, run_campaign
from repro.campaign.spec import CampaignSpec


def _canonical(payload):
    return json.dumps(payload, sort_keys=True)


def _spec():
    return CampaignSpec(
        name="exec-test",
        designs=["gen:seed=0,depth=4,width=3,fanout=2,bits=16,inputs=3,clock=2500",
                 "gen:seed=1,depth=4,width=3,fanout=2,bits=16,inputs=3,clock=2500",
                 "rrot"],
        extraction=["fanout", "delay"],
        subgraph_counts=[4, 8],
        max_iterations=2,
        backend="estimator",
        use_characterized_delays=False,
    )


def test_quick_campaign_completes_with_store(tmp_path):
    spec = _spec()
    result = run_campaign(spec, RunStore(tmp_path / "run.jsonl"))
    assert result.executed == 12 and result.skipped == 0
    assert result.payload["num_jobs"] == 12
    for entry in result.payload["jobs"]:
        outcome = entry["result"]
        assert outcome["final"]["registers"] <= outcome["initial"]["registers"]
        assert outcome["schedule"]  # serialized final schedule present
        assert len(outcome["registers_by_iteration"]) == \
            outcome["iterations"] + 1


def test_interrupted_campaign_resumes_and_matches(tmp_path):
    spec = _spec()
    reference = run_campaign(spec, RunStore(tmp_path / "ref.jsonl"))

    # Simulate a kill after 4 completed jobs: header + 4 records survive.
    path = tmp_path / "killed.jsonl"
    full = (tmp_path / "ref.jsonl").read_text().splitlines()
    path.write_text("\n".join(full[:5]) + "\n")

    resumed = run_campaign(spec, RunStore(path), resume=True)
    assert resumed.skipped == 4
    assert resumed.executed == 8
    assert _canonical(resumed.payload) == _canonical(reference.payload)


def test_parallel_execution_matches_serial(tmp_path):
    spec = _spec()
    serial = run_campaign(spec, RunStore(tmp_path / "serial.jsonl"))
    parallel = run_campaign(spec, RunStore(tmp_path / "parallel.jsonl"), jobs=4)
    assert _canonical(serial.payload) == _canonical(parallel.payload)


def test_in_memory_run_without_store():
    result = run_campaign(quick_spec(num_designs=1))
    assert result.payload["num_jobs"] == 4


def test_completed_store_skips_everything(tmp_path):
    spec = _spec()
    path = tmp_path / "run.jsonl"
    first = run_campaign(spec, RunStore(path))
    again = run_campaign(spec, RunStore(path), resume=True)
    assert again.executed == 0
    assert again.skipped == 12
    assert _canonical(again.payload) == _canonical(first.payload)
