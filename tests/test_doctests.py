"""Tier-1 doctest runner for the modules whose docstrings promise
runnable examples (campaign spec/store and the report engine).

CI additionally runs ``pytest --doctest-modules`` over the same files;
this test keeps the examples honest under the plain tier-1 invocation
(``python -m pytest -x -q``) too.
"""

import doctest
import importlib

import pytest

# Imported by name: `repro.report.aggregate` the attribute is the
# re-exported *function*, not the submodule.
DOCTESTED_MODULES = [
    "repro.campaign.spec",
    "repro.campaign.store",
    "repro.report.aggregate",
    "repro.report.diff",
    "repro.report.frame",
    "repro.report.render",
    "repro.store.record",
    "repro.store.store",
]


@pytest.mark.parametrize("name", DOCTESTED_MODULES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, \
        f"{module.__name__} promises runnable examples but has none"
    assert results.failed == 0
