"""Kernel/reference parity across the Table-I suite and seeded gen: designs.

These are the refactor's safety net (and the executable form of the
"byte-identical before/after" acceptance criterion): every kernel primitive
is checked against the historical pure-Python implementation preserved in
:mod:`repro.kernel.reference` -- exact array equality, not approximate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.designs.generator import GeneratorParams, build_generated_design
from repro.designs.suite import table1_suite
from repro.ir.builder import GraphBuilder
from repro.kernel import (
    GraphView,
    UNREACHED,
    longest_path_from,
    reachable_mask,
    reconstruct_path,
)
from repro.kernel import critical_path_matrix as kernel_matrix
from repro.kernel.reference import (
    graph_adjacency,
    reference_critical_path_between,
    reference_critical_path_matrix,
    reference_in_stage_ancestors,
    reference_longest_path_lengths,
    reference_reachable_from,
    reference_reaching_to,
    reference_sta,
    reference_subgraph_longest_path,
    reference_topological_order,
)
from repro.sdc.delays import NOT_CONNECTED, critical_path_between, node_delays
from repro.tech.delay_model import OperatorModel

_TABLE1_NAMES = [case.name for case in table1_suite()]
_GEN_PARAMS = [GeneratorParams(seed=seed, depth=6, width=4)
               for seed in (0, 11, 23)]


def _build(name: str):
    for case in table1_suite():
        if case.name == name:
            return case.build()
    raise KeyError(name)


def _all_designs():
    for name in _TABLE1_NAMES:
        yield name, _build(name)
    for params in _GEN_PARAMS:
        yield params.name, build_generated_design(params)


@pytest.mark.parametrize("design_name", _TABLE1_NAMES
                         + [p.name for p in _GEN_PARAMS])
class TestGraphParity:
    def _graph(self, design_name):
        if design_name.startswith("gen:"):
            return build_generated_design(GeneratorParams.from_name(design_name))
        return _build(design_name)

    def test_topological_order(self, design_name):
        graph = self._graph(design_name)
        view = GraphView.from_dataflow(graph)
        assert view.order_ids() == reference_topological_order(
            *graph_adjacency(graph))

    def test_critical_path_matrix_byte_identical(self, design_name):
        graph = self._graph(design_name)
        delays = node_delays(graph, OperatorModel())
        ids, operands, users = graph_adjacency(graph)
        order = reference_topological_order(ids, operands, users)
        expected, expected_index = reference_critical_path_matrix(
            order, operands, delays)
        view = GraphView.from_dataflow(graph)
        actual = kernel_matrix(view, view.delay_vector(delays))
        assert expected_index == view.index_of
        assert np.array_equal(expected, actual)

    def test_levels_match_reference(self, design_name):
        graph = self._graph(design_name)
        view = GraphView.from_dataflow(graph)
        ids, operands, _users = graph_adjacency(graph)
        expected = reference_longest_path_lengths(view.order_ids(), operands)
        assert {nid: int(view.levels[view.index_of[nid]])
                for nid in ids} == expected

    def test_reachability_sets_match(self, design_name):
        graph = self._graph(design_name)
        view = GraphView.from_dataflow(graph)
        _ids, operands, users = graph_adjacency(graph)
        for nid in graph.node_ids()[::5]:
            forward = reachable_mask(view, [view.index_of[nid]])
            assert set(view.ids_of(np.nonzero(forward)[0])) == \
                reference_reachable_from(users, nid)
            backward = reachable_mask(view, [view.index_of[nid]],
                                      backward=True)
            assert set(view.ids_of(np.nonzero(backward)[0])) == \
                reference_reaching_to(operands, nid)

    def test_critical_path_between_matches(self, design_name):
        graph = self._graph(design_name)
        delays = node_delays(graph, OperatorModel())
        ids, operands, users = graph_adjacency(graph)
        order = reference_topological_order(ids, operands, users)
        node_ids = graph.node_ids()
        for source in node_ids[::6]:
            for sink in node_ids[::7]:
                expected = reference_critical_path_between(
                    order, users, delays, source, sink)
                assert critical_path_between(graph, delays, source, sink) == \
                    expected


class TestStaParity:
    """Arrival-time STA vs the reference loop on lowered Table-I designs."""

    @pytest.mark.parametrize("design_name", ["rrot", "binary divide",
                                             "hsv2rgb", "crc32"])
    def test_lowered_design(self, design_name):
        from repro.netlist.lowering import lower_graph
        from repro.netlist.sta import StaticTimingAnalysis

        netlist = lower_graph(_build(design_name)).netlist
        sta = StaticTimingAnalysis()
        expected_delay, expected_path, expected_arrival = reference_sta(
            netlist, sta.gate_delay)
        result = sta.run(netlist)
        assert result.critical_path_delay_ps == expected_delay
        assert result.critical_path == expected_path
        assert result.arrival_times == expected_arrival


class TestSubgraphAndScheduleParity:
    def test_estimator_subgraph_longest_path(self):
        from repro.synth.backend import EstimatorBackend

        graph = _build("rrot")
        backend = EstimatorBackend()
        node_ids = [n.node_id for n in graph.nodes() if not n.is_source]
        members = set(node_ids[: len(node_ids) // 2])
        ids, operands, users = graph_adjacency(graph)
        order = reference_topological_order(ids, operands, users)
        best = reference_subgraph_longest_path(
            order, operands, members,
            lambda nid: (0.0 if graph.node(nid).is_source
                         else backend.model.node_delay(graph.node(nid))))
        expected = max(best.values(), default=0.0)
        report = backend.evaluate_subgraph(graph, members)
        assert report.delay_ps == expected

    def test_in_stage_ancestors_matches_reference(self):
        from repro.isdc.extraction import in_stage_ancestors, registered_nodes
        from repro.sdc.scheduler import SdcScheduler

        graph = _build("rrot")
        schedule = SdcScheduler(clock_period_ps=2500.0).schedule(graph).schedule
        _ids, operands, _users = graph_adjacency(graph)
        is_source = {n.node_id: n.is_source for n in graph.nodes()}
        roots = registered_nodes(schedule)
        assert roots  # the schedule must register something
        for root in roots:
            assert in_stage_ancestors(schedule, root) == \
                reference_in_stage_ancestors(operands, is_source,
                                             schedule.stages, root)

    def test_in_stage_ancestors_includes_source_root(self):
        from repro.isdc.extraction import in_stage_ancestors
        from repro.sdc.scheduler import SdcScheduler

        graph = _build("rrot")
        schedule = SdcScheduler(clock_period_ps=2500.0).schedule(graph).schedule
        param = graph.parameters()[0].node_id
        _ids, operands, _users = graph_adjacency(graph)
        is_source = {n.node_id: n.is_source for n in graph.nodes()}
        assert in_stage_ancestors(schedule, param) == {param}
        assert in_stage_ancestors(schedule, param) == \
            reference_in_stage_ancestors(operands, is_source,
                                         schedule.stages, param)

    def test_registered_nodes_semantics(self):
        from repro.isdc.extraction import registered_nodes
        from repro.sdc.scheduler import SdcScheduler

        graph = _build("rrot")
        schedule = SdcScheduler(clock_period_ps=2500.0).schedule(graph).schedule
        expected = []
        for node in graph.nodes():
            if node.is_source:
                continue
            users = graph.users_of(node.node_id)
            stage = schedule.stage_of(node.node_id)
            if not users or any(schedule.stage_of(u) > stage for u in users):
                expected.append(node.node_id)
        assert registered_nodes(schedule) == expected


_BINARY_OPS = ["add", "sub", "xor", "and_", "or_"]


@st.composite
def random_graphs(draw):
    builder = GraphBuilder("random_kernel")
    pool = [builder.param("p0", 8), builder.param("p1", 8),
            builder.param("p2", 8)]
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        method = draw(st.sampled_from(_BINARY_OPS))
        left = draw(st.sampled_from(pool))
        right = draw(st.sampled_from(pool))
        pool.append(getattr(builder, method)(left, right))
    builder.output(pool[-1])
    return builder.graph


class TestRandomGraphProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph=random_graphs())
    def test_matrix_and_paths_match_reference(self, graph):
        delays = node_delays(graph, OperatorModel())
        ids, operands, users = graph_adjacency(graph)
        order = reference_topological_order(ids, operands, users)
        expected_matrix, expected_index = reference_critical_path_matrix(
            order, operands, delays)
        view = GraphView.from_dataflow(graph)
        assert view.order_ids() == order
        assert np.array_equal(
            expected_matrix, kernel_matrix(view, view.delay_vector(delays)))
        assert expected_index == view.index_of
        source, sink = ids[0], ids[-1]
        assert critical_path_between(graph, delays, source, sink) == \
            reference_critical_path_between(order, users, delays, source, sink)

    @settings(max_examples=40, deadline=None)
    @given(graph=random_graphs())
    def test_single_source_values_match_matrix(self, graph):
        delays = node_delays(graph, OperatorModel())
        view = GraphView.from_dataflow(graph)
        vector = view.delay_vector(delays)
        matrix = kernel_matrix(view, vector)
        source = view.index_of[graph.node_ids()[0]]
        values, parents = longest_path_from(view, vector, source)
        for dense in range(view.num_nodes):
            if values[dense] == UNREACHED:
                assert dense != source
                assert matrix[source, dense] == NOT_CONNECTED
            else:
                assert values[dense] == matrix[source, dense]
                path = reconstruct_path(parents, source, dense)
                assert sum(vector[i] for i in path) == pytest.approx(
                    values[dense])
