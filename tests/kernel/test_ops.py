"""Unit tests for the vectorized kernel primitives."""

import numpy as np
import pytest

from repro.ir.builder import GraphBuilder
from repro.kernel import (
    GraphView,
    NOT_CONNECTED,
    UNREACHED,
    critical_path_matrix,
    forward_propagate,
    longest_path_from,
    path_delay,
    reachable_mask,
    reconstruct_path,
)


@pytest.fixture
def equal_diamond():
    """A diamond whose two branches have *equal* delay (tie-break fodder)."""
    builder = GraphBuilder("equal_diamond")
    a = builder.param("a", 8)
    base = builder.add(a, a, name="base")
    left = builder.add(base, a, name="left")
    right = builder.add(base, a, name="right")
    join = builder.add(left, right, name="join")
    builder.output(join)
    return builder.graph, {"base": base.node_id, "left": left.node_id,
                           "right": right.node_id, "join": join.node_id}


class TestForwardPropagate:
    def test_values_follow_longest_path(self, equal_diamond):
        graph, names = equal_diamond
        view = GraphView.from_dataflow(graph)
        delays = view.delay_vector({n.node_id: 1.0 for n in graph.nodes()})
        values, _ = longest_path_from(view, delays, view.index_of[names["base"]])
        assert values[view.index_of[names["join"]]] == 3.0

    def test_topo_tie_break_prefers_earliest_position(self, equal_diamond):
        graph, names = equal_diamond
        view = GraphView.from_dataflow(graph)
        delays = view.delay_vector({n.node_id: 1.0 for n in graph.nodes()})
        _values, parents = longest_path_from(view, delays,
                                             view.index_of[names["base"]])
        dense = reconstruct_path(parents, view.index_of[names["base"]],
                                 view.index_of[names["join"]])
        # 'left' was created before 'right', so it has the earlier
        # topological position and must win the equal-delay tie.
        assert view.ids_of(dense) == [names["base"], names["left"],
                                      names["join"]]

    def test_masked_floor_propagation(self, equal_diamond):
        graph, names = equal_diamond
        view = GraphView.from_dataflow(graph)
        delays = view.delay_vector({n.node_id: 2.0 for n in graph.nodes()})
        mask = np.zeros(view.num_nodes, dtype=bool)
        mask[[view.index_of[names["left"]], view.index_of[names["join"]]]] = True
        values, _ = forward_propagate(view, delays, mask=mask, floor=0.0)
        # 'left' has no in-mask predecessors: starts from the floor.
        assert values[view.index_of[names["left"]]] == 2.0
        assert values[view.index_of[names["join"]]] == 4.0
        assert values[view.index_of[names["base"]]] == UNREACHED

    def test_unreachable_stays_unreached(self, equal_diamond):
        graph, names = equal_diamond
        view = GraphView.from_dataflow(graph)
        delays = view.delay_vector({n.node_id: 1.0 for n in graph.nodes()})
        values, _ = longest_path_from(view, delays,
                                      view.index_of[names["join"]])
        assert values[view.index_of[names["base"]]] == UNREACHED

    def test_reconstruct_path_raises_without_path(self, equal_diamond):
        graph, names = equal_diamond
        view = GraphView.from_dataflow(graph)
        parents = np.full(view.num_nodes, -1, dtype=np.int64)
        with pytest.raises(ValueError, match="no recorded path"):
            reconstruct_path(parents, view.index_of[names["base"]],
                             view.index_of[names["join"]])


class TestReachability:
    def test_forward_and_backward(self, equal_diamond):
        graph, names = equal_diamond
        view = GraphView.from_dataflow(graph)
        downstream = reachable_mask(view, [view.index_of[names["left"]]])
        ids = set(view.ids_of(np.nonzero(downstream)[0]))
        assert names["left"] in ids and names["join"] in ids
        assert names["right"] not in ids
        upstream = reachable_mask(view, [view.index_of[names["join"]]],
                                  backward=True)
        assert upstream.sum() >= 4  # join, left, right, base, a

    def test_mask_restricts_traversal(self, equal_diamond):
        graph, names = equal_diamond
        view = GraphView.from_dataflow(graph)
        mask = np.ones(view.num_nodes, dtype=bool)
        mask[view.index_of[names["left"]]] = False
        mask[view.index_of[names["right"]]] = False
        blocked = reachable_mask(view, [view.index_of[names["base"]]],
                                 mask=mask)
        assert set(view.ids_of(np.nonzero(blocked)[0])) == {names["base"]}

    def test_seed_outside_mask_is_dropped(self, equal_diamond):
        graph, names = equal_diamond
        view = GraphView.from_dataflow(graph)
        mask = np.zeros(view.num_nodes, dtype=bool)
        result = reachable_mask(view, [view.index_of[names["base"]]],
                                mask=mask)
        assert not result.any()


class TestCriticalPathMatrix:
    def test_small_matrix_values(self, equal_diamond):
        graph, names = equal_diamond
        view = GraphView.from_dataflow(graph)
        delays = view.delay_vector({n.node_id: 1.0 for n in graph.nodes()})
        matrix = critical_path_matrix(view, delays)
        base = view.index_of[names["base"]]
        join = view.index_of[names["join"]]
        left = view.index_of[names["left"]]
        right = view.index_of[names["right"]]
        assert matrix[base, join] == 3.0
        assert matrix[base, base] == 1.0
        assert matrix[left, right] == NOT_CONNECTED
        assert matrix[join, base] == NOT_CONNECTED

    def test_empty_graph(self):
        view = GraphView.from_dataflow(GraphBuilder("empty").graph)
        assert critical_path_matrix(view, np.empty(0)).shape == (0, 0)


class TestPathDelay:
    def test_mapping_and_callable_agree(self):
        delays = {1: 1.5, 2: 2.5, 3: 3.0}
        assert path_delay(delays, [1, 2, 3]) == 7.0
        assert path_delay(lambda nid: delays[nid], [1, 2, 3]) == 7.0

    def test_empty_path(self):
        assert path_delay({}, []) == 0.0
