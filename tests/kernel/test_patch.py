"""Incremental GraphView patching vs from-scratch rebuilds.

A patched view must be indistinguishable from a rebuild, *field by field*:
same Kahn order, same CSR arrays (operand order and duplicates included),
same levels and level grouping, same source mask.  These tests drive random
edit sequences through all three containers (dataflow graph, netlist, AIG),
exercise both merge strategies of the patcher (the vectorized flat path for
adds that only consume pre-existing nodes, the chained path for adds that
consume other adds), and pin down the budget/config gating and the delta-log
lifecycle around :meth:`GraphView.from_dataflow`.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.aig.aig import Aig
from repro.designs.generator import GeneratorParams, build_generated_design
from repro.ir.ops import OpKind
from repro.kernel import GraphView, kernel_config, set_kernel_config
from repro.kernel.delta import DELTA_CAP, delta_log, record_add
from repro.kernel.patch import PatchError, patch_view
from repro.kernel.view import _CACHE_ATTR
from repro.netlist.gates import GateKind
from repro.netlist.netlist import Netlist

_FIELDS = ("order", "pred_indptr", "pred_indices", "succ_indptr",
           "succ_indices", "levels", "level_order", "level_starts",
           "source_mask")


@pytest.fixture(autouse=True)
def _restore_kernel_config():
    saved = kernel_config()
    yield
    set_kernel_config(saved)


def assert_views_equal(actual: GraphView, expected: GraphView) -> None:
    assert actual.order_ids() == expected.order_ids()
    assert actual.index_of == expected.index_of
    assert actual.num_levels == expected.num_levels
    for field in _FIELDS:
        assert np.array_equal(getattr(actual, field),
                              getattr(expected, field)), field


def _rebuild(container, from_view) -> GraphView:
    """Build the same container's view from scratch (no cache, no patch)."""
    saved = kernel_config()
    if hasattr(container, _CACHE_ATTR):
        delattr(container, _CACHE_ATTR)
    set_kernel_config(saved, patch_mode="never")
    try:
        return from_view(container)
    finally:
        set_kernel_config(saved)


def _base_graph(seed: int = 2):
    return build_generated_design(GeneratorParams(seed=seed, depth=5,
                                                  width=4))


class TestDataflowPatching:
    def _patched_and_rebuilt(self, graph, edit):
        view = GraphView.from_dataflow(graph)  # cache + start the delta log
        edit(graph)
        patched = GraphView.from_dataflow(graph)
        assert patched is not view  # a structural edit really happened
        return patched, _rebuild(graph, GraphView.from_dataflow)

    def test_flat_adds_on_old_nodes(self):
        graph = _base_graph()
        old_ids = graph.node_ids()
        rng = random.Random(0)

        def edit(g):
            for _ in range(12):
                g.add_node(OpKind.XOR,
                           (rng.choice(old_ids), rng.choice(old_ids)))

        patched, rebuilt = self._patched_and_rebuilt(graph, edit)
        assert_views_equal(patched, rebuilt)

    def test_chained_adds_consume_new_nodes(self):
        graph = _base_graph()
        rng = random.Random(1)

        def edit(g):
            fresh = []
            for _ in range(10):
                pool = g.node_ids() if not fresh else fresh
                node = g.add_node(OpKind.ADD, (rng.choice(g.node_ids()),
                                               rng.choice(pool)))
                fresh.append(node.node_id)

        patched, rebuilt = self._patched_and_rebuilt(graph, edit)
        assert_views_equal(patched, rebuilt)

    def test_removals_and_adds_mixed(self):
        graph = _base_graph()

        def edit(g):
            sinks = [n.node_id for n in g.nodes()
                     if not g.users_of(n.node_id) and not n.is_source]
            for sink in sinks[:3]:
                g.remove_node(sink)
            survivors = g.node_ids()
            g.add_node(OpKind.OR, (survivors[0], survivors[-1]))

        patched, rebuilt = self._patched_and_rebuilt(graph, edit)
        assert_views_equal(patched, rebuilt)

    def test_duplicate_operands_survive_patching(self):
        graph = _base_graph()
        target = graph.node_ids()[-1]

        def edit(g):
            node = g.add_node(OpKind.ADD, (target, target))  # u + u
            g.add_node(OpKind.XOR, (node.node_id, node.node_id))

        patched, rebuilt = self._patched_and_rebuilt(graph, edit)
        assert_views_equal(patched, rebuilt)

    def test_add_then_remove_same_node_cancels_out(self):
        graph = _base_graph()
        view = GraphView.from_dataflow(graph)
        ids = graph.node_ids()
        node = graph.add_node(OpKind.AND, (ids[0], ids[1]))
        graph.remove_node(node.node_id)
        patched = GraphView.from_dataflow(graph)
        assert patched is not view  # version moved by two
        assert_views_equal(patched, view)


class TestPatchDispatchAndGating:
    def test_cached_view_is_reused_verbatim(self):
        graph = _base_graph()
        view = GraphView.from_dataflow(graph)
        assert GraphView.from_dataflow(graph) is view
        graph.set_name(graph.node_ids()[0], "renamed")  # not structural
        assert GraphView.from_dataflow(graph) is view

    def test_successful_patch_is_cached_and_resets_the_log(self):
        graph = _base_graph()
        GraphView.from_dataflow(graph)
        ids = graph.node_ids()
        graph.add_node(OpKind.ADD, (ids[0], ids[1]))
        assert len(delta_log(graph)) == 1
        patched = GraphView.from_dataflow(graph)
        assert delta_log(graph) == []  # fresh log, ready for the next edit
        assert GraphView.from_dataflow(graph) is patched

    def test_patch_mode_never_rebuilds(self, monkeypatch):
        def boom(*_args, **_kwargs):
            raise AssertionError("patch_view must not run")

        monkeypatch.setattr("repro.kernel.patch.patch_view", boom)
        set_kernel_config(kernel_config(), patch_mode="never")
        graph = _base_graph()
        GraphView.from_dataflow(graph)
        ids = graph.node_ids()
        graph.add_node(OpKind.ADD, (ids[0], ids[1]))
        rebuilt = GraphView.from_dataflow(graph)
        assert graph.node_ids()[-1] in rebuilt.index_of

    def test_oversized_delta_rebuilds(self, monkeypatch):
        def boom(*_args, **_kwargs):
            raise AssertionError("patch_view must not run")

        monkeypatch.setattr("repro.kernel.patch.patch_view", boom)
        set_kernel_config(kernel_config(), patch_max_delta=2,
                          patch_max_delta_fraction=0.0)
        graph = _base_graph()
        GraphView.from_dataflow(graph)
        ids = graph.node_ids()
        for _ in range(3):  # one past the absolute budget
            graph.add_node(OpKind.ADD, (ids[0], ids[1]))
        view = GraphView.from_dataflow(graph)
        assert view.num_nodes == len(graph)

    def test_overflowed_log_is_dropped(self):
        graph = _base_graph()
        GraphView.from_dataflow(graph)
        log = delta_log(graph)
        log.extend([("add", -1, (), False)] * DELTA_CAP)  # simulate overflow
        ids = graph.node_ids()
        graph.add_node(OpKind.ADD, (ids[0], ids[1]))
        assert delta_log(graph) is None  # record_add dropped the log
        view = GraphView.from_dataflow(graph)  # full rebuild, still correct
        assert view.num_nodes == len(graph)

    def test_patch_error_falls_back_to_rebuild(self):
        graph = _base_graph()
        GraphView.from_dataflow(graph)
        ids = graph.node_ids()
        graph.add_node(OpKind.ADD, (ids[0], ids[1]))
        delta_log(graph)[0] = ("frobnicate", 0)  # unsupported entry shape
        view = GraphView.from_dataflow(graph)
        assert view.num_nodes == len(graph)
        assert_views_equal(view, _rebuild(graph, GraphView.from_dataflow))

    def test_copy_does_not_share_the_cache(self):
        graph = _base_graph()
        view = GraphView.from_dataflow(graph)
        clone = graph.copy()
        assert GraphView.from_dataflow(clone) is not view


class TestPatchViewDirect:
    def test_unknown_delta_entry_raises(self):
        graph = _base_graph()
        view = GraphView.from_dataflow(graph)
        with pytest.raises(PatchError):
            patch_view(view, [("rename", 3)])

    def test_removing_a_node_with_users_raises(self):
        graph = _base_graph()
        view = GraphView.from_dataflow(graph)
        used = next(nid for nid in graph.node_ids()
                    if graph.users_of(nid))
        with pytest.raises(PatchError):
            patch_view(view, [("remove", used)])

    def test_removing_an_absent_node_raises(self):
        graph = _base_graph()
        view = GraphView.from_dataflow(graph)
        with pytest.raises(PatchError):
            patch_view(view, [("remove", 10**9)])

    def test_stale_operand_raises(self):
        graph = _base_graph()
        view = GraphView.from_dataflow(graph)
        with pytest.raises(PatchError):
            patch_view(view, [("add", 10**9, (10**8,), False)])


class TestContainerRemovalErrors:
    def test_dataflow_remove_node(self):
        graph = _base_graph()
        with pytest.raises(KeyError):
            graph.remove_node(10**9)
        used = next(nid for nid in graph.node_ids() if graph.users_of(nid))
        with pytest.raises(ValueError, match="still has users"):
            graph.remove_node(used)

    def test_netlist_remove_gate(self):
        netlist = Netlist("removals")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        g = netlist.add_gate(GateKind.AND2, (a, b))
        out = netlist.add_gate(GateKind.INV, (g,))
        netlist.mark_output(out)
        with pytest.raises(KeyError):
            netlist.remove_gate(10**9)
        with pytest.raises(ValueError, match="still drives"):
            netlist.remove_gate(g)
        with pytest.raises(ValueError, match="primary output"):
            netlist.remove_gate(out)


class TestNetlistAndAigPatching:
    def _netlist(self):
        netlist = Netlist("patchable")
        rng = random.Random(3)
        pool = [netlist.add_input(f"in{i}") for i in range(4)]
        for _ in range(20):
            kind = rng.choice([GateKind.AND2, GateKind.OR2, GateKind.XOR2,
                               GateKind.NAND2])
            pool.append(netlist.add_gate(kind, (rng.choice(pool),
                                                rng.choice(pool))))
        netlist.mark_output(pool[-1])
        return netlist

    def test_netlist_gate_adds_patch(self):
        netlist = self._netlist()
        GraphView.from_netlist(netlist)
        rng = random.Random(4)
        ids = netlist.gate_ids()
        for _ in range(8):
            netlist.add_gate(GateKind.XOR2, (rng.choice(ids),
                                             rng.choice(ids)))
        patched = GraphView.from_netlist(netlist)
        assert_views_equal(patched, _rebuild(netlist, GraphView.from_netlist))

    def test_netlist_removal_patches(self):
        netlist = self._netlist()
        GraphView.from_netlist(netlist)
        removable = next(g.gate_id for g in netlist.gates()
                         if not netlist.fanout(g.gate_id)
                         and g.gate_id not in netlist.outputs())
        netlist.remove_gate(removable)
        patched = GraphView.from_netlist(netlist)
        assert_views_equal(patched, _rebuild(netlist, GraphView.from_netlist))

    def test_aig_and_adds_patch(self):
        aig = Aig("patchable")
        rng = random.Random(5)
        literals = [aig.add_input(f"in{i}") for i in range(4)]
        for _ in range(16):
            literals.append(aig.add_and(rng.choice(literals),
                                        rng.choice(literals)))
        GraphView.from_aig(aig)
        for _ in range(6):
            # Fresh (non-strashed) ANDs only: reuse does not change structure.
            literals.append(aig.add_xor(rng.choice(literals),
                                        rng.choice(literals)))
        patched = GraphView.from_aig(aig)
        assert_views_equal(patched, _rebuild(aig, GraphView.from_aig))


_EDIT_OPS = (OpKind.ADD, OpKind.SUB, OpKind.XOR, OpKind.AND, OpKind.OR)


class TestRandomEditSequences:
    """The core property: any supported edit sequence patches to the rebuild."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           num_edits=st.integers(min_value=1, max_value=24),
           chain=st.booleans())
    def test_patched_equals_rebuilt(self, seed, num_edits, chain):
        graph = _base_graph(seed=seed % 7)
        GraphView.from_dataflow(graph)
        rng = random.Random(seed)
        fresh: list[int] = []
        for _ in range(num_edits):
            sinks = [n.node_id for n in graph.nodes()
                     if not graph.users_of(n.node_id) and not n.is_source]
            roll = rng.random()
            if roll < 0.25 and sinks:
                graph.remove_node(rng.choice(sinks))
            else:
                pool = graph.node_ids()
                if chain and fresh and rng.random() < 0.5:
                    operands = (rng.choice(pool), rng.choice(fresh))
                else:
                    operands = (rng.choice(pool), rng.choice(pool))
                node = graph.add_node(rng.choice(_EDIT_OPS), operands)
                fresh.append(node.node_id)
            fresh = [nid for nid in fresh if nid in graph]
        patched = GraphView.from_dataflow(graph)
        assert_views_equal(patched, _rebuild(graph, GraphView.from_dataflow))


class TestDeltaRecording:
    def test_log_only_exists_after_a_view_is_cached(self):
        graph = _base_graph()
        assert delta_log(graph) is None  # no view yet: mutators pay nothing
        ids = graph.node_ids()
        graph.add_node(OpKind.ADD, (ids[0], ids[1]))
        assert delta_log(graph) is None
        GraphView.from_dataflow(graph)
        assert delta_log(graph) == []
        node = graph.add_node(OpKind.XOR, (ids[0], ids[1]))
        assert delta_log(graph) == [("add", node.node_id,
                                     (ids[0], ids[1]), False)]

    def test_record_add_is_a_noop_without_a_log(self):
        class Bare:
            pass

        container = Bare()
        record_add(container, 0, (), True)  # must not raise or create a log
        assert delta_log(container) is None
