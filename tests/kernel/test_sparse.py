"""Sparse all-pairs sweep parity, dispatch and configuration.

The sparse frontier-compressed sweep must reproduce the dense kernel's
matrix *bit-for-bit* -- same floats, same ``NOT_CONNECTED`` holes -- on every
design shape, and :func:`~repro.kernel.auto_critical_path_matrix` must pick
the path the active :class:`~repro.kernel.KernelConfig` asks for.  These
tests pin both down on the Table-I suite, seeded ``gen:`` designs and
hypothesis-random graphs, plus the budget abort, the environment overrides
and the ``PYTHONHASHSEED`` independence of the sparse path.
"""

import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.designs.generator import GeneratorParams, build_generated_design
from repro.designs.suite import table1_suite
from repro.ir.builder import GraphBuilder
from repro.kernel import (
    HAVE_SCIPY,
    GraphView,
    KernelConfig,
    NOT_CONNECTED,
    auto_critical_path_matrix,
    critical_path_matrix,
    kernel_config,
    reachable_indices,
    reachable_mask,
    set_kernel_config,
    sparse_critical_path_matrix,
)
from repro.sdc.delays import node_delays
from repro.tech.delay_model import OperatorModel

_TABLE1_NAMES = [case.name for case in table1_suite()]
_GEN_PARAMS = [GeneratorParams(seed=seed, depth=6, width=4)
               for seed in (0, 11, 23)]


@pytest.fixture(autouse=True)
def _restore_kernel_config():
    """Every test leaves the process-wide config as it found it."""
    saved = kernel_config()
    yield
    set_kernel_config(saved)


def _build(name: str):
    if name.startswith("gen:"):
        return build_generated_design(GeneratorParams.from_name(name))
    for case in table1_suite():
        if case.name == name:
            return case.build()
    raise KeyError(name)


def _view_and_delays(graph):
    view = GraphView.from_dataflow(graph)
    delays = view.delay_vector(node_delays(graph, OperatorModel()))
    return view, delays


@pytest.mark.parametrize("design_name", _TABLE1_NAMES
                         + [p.name for p in _GEN_PARAMS])
class TestSparseDenseParity:
    def test_to_dense_is_bit_identical(self, design_name):
        view, delays = _view_and_delays(_build(design_name))
        dense = critical_path_matrix(view, delays)
        sparse = sparse_critical_path_matrix(view, delays)
        assert sparse is not None
        assert np.array_equal(sparse.to_dense(), dense)

    def test_rows_are_sorted_with_trailing_diagonal(self, design_name):
        view, delays = _view_and_delays(_build(design_name))
        sparse = sparse_critical_path_matrix(view, delays)
        for target in range(view.num_nodes):
            ancestors, values = sparse.row(target)
            assert np.all(np.diff(ancestors) > 0)
            assert ancestors[-1] == target  # diagonal closes every row
            assert values[-1] == delays[target]

    def test_nnz_matches_dense_connectivity(self, design_name):
        view, delays = _view_and_delays(_build(design_name))
        dense = critical_path_matrix(view, delays)
        sparse = sparse_critical_path_matrix(view, delays)
        connected = int(np.count_nonzero(dense != NOT_CONNECTED))
        assert sparse.nnz == connected
        assert sparse.density == pytest.approx(
            connected / float(view.num_nodes) ** 2)

    def test_transpose_arrays_round_trip(self, design_name):
        view, delays = _view_and_delays(_build(design_name))
        sparse = sparse_critical_path_matrix(view, delays)
        indptr, indices, data = sparse.transpose_arrays()
        rebuilt = np.full((view.num_nodes, view.num_nodes), NOT_CONNECTED,
                          dtype=float)
        rows = np.repeat(np.arange(view.num_nodes, dtype=np.int64),
                         np.diff(indptr))
        rebuilt[rows, indices] = data
        assert np.array_equal(rebuilt, sparse.to_dense())
        # Row u of the transpose lists descendants ascending: the diagonal
        # (the topologically earliest descendant of u) leads each row.
        for u in range(view.num_nodes):
            segment = indices[indptr[u]:indptr[u + 1]]
            assert np.all(np.diff(segment) > 0)
            assert segment[0] == u


class TestBudgetAndDispatch:
    def _graph(self):
        return build_generated_design(GeneratorParams(seed=3, depth=8,
                                                      width=6))

    def test_budget_abort_returns_none(self):
        view, delays = _view_and_delays(self._graph())
        full = sparse_critical_path_matrix(view, delays)
        assert sparse_critical_path_matrix(view, delays,
                                           nnz_budget=full.nnz - 1) is None
        # An exact budget is not an abort: the threshold is strict.
        kept = sparse_critical_path_matrix(view, delays, nnz_budget=full.nnz)
        assert kept is not None and kept.nnz == full.nnz

    def test_forced_dense_never_builds_a_pattern(self):
        view, delays = _view_and_delays(self._graph())
        config = KernelConfig(matrix_mode="dense")
        matrix, sparse = auto_critical_path_matrix(view, delays,
                                                   config=config)
        assert sparse is None
        assert np.array_equal(matrix, critical_path_matrix(view, delays))

    def test_forced_sparse_ignores_size_and_density(self):
        view, delays = _view_and_delays(self._graph())
        # Forced mode must win even on a graph far below min_sparse_nodes
        # and with a density threshold the graph certainly exceeds.
        config = KernelConfig(matrix_mode="sparse", min_sparse_nodes=10**6,
                              density_threshold=1e-9)
        matrix, sparse = auto_critical_path_matrix(view, delays,
                                                   config=config)
        assert sparse is not None
        assert np.array_equal(matrix, critical_path_matrix(view, delays))

    def test_auto_respects_min_sparse_nodes(self):
        view, delays = _view_and_delays(self._graph())
        below = KernelConfig(min_sparse_nodes=view.num_nodes + 1)
        assert auto_critical_path_matrix(view, delays, config=below)[1] is None
        above = KernelConfig(min_sparse_nodes=view.num_nodes)
        assert auto_critical_path_matrix(view, delays,
                                         config=above)[1] is not None

    def test_auto_density_cutover_falls_back_to_dense(self):
        view, delays = _view_and_delays(self._graph())
        config = KernelConfig(min_sparse_nodes=0, density_threshold=1e-9)
        matrix, sparse = auto_critical_path_matrix(view, delays,
                                                   config=config)
        assert sparse is None  # budget exceeded mid-sweep
        assert np.array_equal(matrix, critical_path_matrix(view, delays))

    def test_auto_uses_process_config_by_default(self):
        view, delays = _view_and_delays(self._graph())
        set_kernel_config(kernel_config(), matrix_mode="sparse")
        assert auto_critical_path_matrix(view, delays)[1] is not None
        set_kernel_config(kernel_config(), matrix_mode="dense")
        assert auto_critical_path_matrix(view, delays)[1] is None


class TestKernelConfig:
    def test_env_overrides_via_reread(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_MATRIX", "sparse")
        monkeypatch.setenv("REPRO_KERNEL_DENSITY", "0.125")
        monkeypatch.setenv("REPRO_KERNEL_MIN_SPARSE_NODES", "7")
        monkeypatch.setenv("REPRO_KERNEL_PATCH", "off")
        monkeypatch.setenv("REPRO_KERNEL_PATCH_MAX_DELTA", "17")
        config = set_kernel_config()  # no args: re-read the environment
        assert config.matrix_mode == "sparse"
        assert config.density_threshold == 0.125
        assert config.min_sparse_nodes == 7
        assert config.patch_mode == "never"
        assert config.patch_max_delta == 17
        assert kernel_config() is config

    def test_invalid_env_override_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_MATRIX", "bogus")
        with pytest.raises(ValueError, match="REPRO_KERNEL"):
            set_kernel_config()

    def test_override_kwargs_replace_fields(self):
        config = set_kernel_config(KernelConfig(), matrix_mode="dense",
                                   patch_max_delta=3)
        assert config.matrix_mode == "dense"
        assert config.patch_max_delta == 3
        assert config.density_threshold == KernelConfig().density_threshold

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelConfig(matrix_mode="fast")
        with pytest.raises(ValueError):
            KernelConfig(patch_mode="sometimes")
        with pytest.raises(ValueError):
            KernelConfig(density_threshold=0.0)
        with pytest.raises(ValueError):
            KernelConfig(patch_max_delta=-1)

    def test_budget_helpers(self):
        config = KernelConfig(density_threshold=0.5, min_sparse_nodes=100)
        assert not config.wants_sparse(99)
        assert config.wants_sparse(100)
        assert config.nnz_budget(10) == 50
        assert KernelConfig(matrix_mode="sparse").nnz_budget(10) == 100
        assert KernelConfig(patch_mode="never").patch_budget(10**6) == 0
        assert KernelConfig(patch_max_delta=256,
                            patch_max_delta_fraction=0.05).patch_budget(10**4) \
            == 500


@pytest.mark.skipif(not HAVE_SCIPY, reason="scipy not installed")
class TestScipyExport:
    def test_to_scipy_matches_transpose_arrays(self):
        graph = build_generated_design(GeneratorParams(seed=1, depth=5,
                                                       width=5))
        view, delays = _view_and_delays(graph)
        sparse = sparse_critical_path_matrix(view, delays)
        exported = sparse.to_scipy()
        indptr, indices, data = sparse.transpose_arrays()
        assert exported.shape == (view.num_nodes, view.num_nodes)
        assert np.array_equal(exported.indptr, indptr)
        assert np.array_equal(exported.indices, indices)
        assert np.array_equal(exported.data, data)


class TestReachableIndices:
    def test_matches_reachable_mask(self):
        graph = build_generated_design(GeneratorParams(seed=9, depth=7,
                                                       width=5))
        view = GraphView.from_dataflow(graph)
        scratch = np.zeros(view.num_nodes, dtype=bool)
        for backward in (False, True):
            for seed in range(0, view.num_nodes, 5):
                indices = reachable_indices(view, [seed], backward=backward,
                                            scratch=scratch)
                assert not scratch.any()  # scratch handed back clean
                assert np.all(np.diff(indices) > 0)
                mask = reachable_mask(view, [seed], backward=backward)
                assert np.array_equal(np.nonzero(mask)[0], indices)

    def test_duplicate_seeds_and_mask(self):
        graph = build_generated_design(GeneratorParams(seed=9, depth=7,
                                                       width=5))
        view = GraphView.from_dataflow(graph)
        seeds = [0, 0, 1, 1]
        allowed = np.zeros(view.num_nodes, dtype=bool)
        allowed[: view.num_nodes // 2] = True
        indices = reachable_indices(view, seeds, mask=allowed)
        mask = reachable_mask(view, seeds, mask=allowed)
        assert np.array_equal(np.nonzero(mask)[0], indices)
        assert np.all(np.diff(indices) > 0)


_BINARY_OPS = ["add", "sub", "xor", "and_", "or_"]


@st.composite
def random_graphs(draw):
    builder = GraphBuilder("random_sparse")
    pool = [builder.param("p0", 8), builder.param("p1", 8),
            builder.param("p2", 8)]
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        method = draw(st.sampled_from(_BINARY_OPS))
        left = draw(st.sampled_from(pool))
        right = draw(st.sampled_from(pool))
        pool.append(getattr(builder, method)(left, right))
    builder.output(pool[-1])
    return builder.graph


class TestRandomGraphSparseParity:
    @settings(max_examples=60, deadline=None)
    @given(graph=random_graphs())
    def test_sparse_equals_dense(self, graph):
        view, delays = _view_and_delays(graph)
        dense = critical_path_matrix(view, delays)
        sparse = sparse_critical_path_matrix(view, delays)
        assert np.array_equal(sparse.to_dense(), dense)
        indptr, indices, data = sparse.transpose_arrays()
        rebuilt = np.full_like(dense, NOT_CONNECTED)
        rows = np.repeat(np.arange(view.num_nodes, dtype=np.int64),
                         np.diff(indptr))
        rebuilt[rows, indices] = data
        assert np.array_equal(rebuilt, dense)


_SPARSE_HASHSEED_SCRIPT = r"""
import json, sys
import numpy as np
from repro.designs.generator import GeneratorParams, build_generated_design
from repro.kernel import GraphView, sparse_critical_path_matrix
from repro.sdc.delays import node_delays
from repro.tech.delay_model import OperatorModel

graph = build_generated_design(GeneratorParams(seed=4, depth=10, width=8))
view = GraphView.from_dataflow(graph)
delays = view.delay_vector(node_delays(graph, OperatorModel()))
sparse = sparse_critical_path_matrix(view, delays)
json.dump({
    "order": view.order_ids(),
    "indptr": sparse.indptr.tolist(),
    "indices": sparse.indices.tolist(),
    "data": sparse.data.tolist(),
}, sys.stdout, sort_keys=True)
"""


def _run_under_seed(script: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")
    completed = subprocess.run([sys.executable, "-c", script], env=env,
                               capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


@pytest.mark.parametrize("other_seed", ["1", "31337", "random"])
def test_sparse_sweep_is_hashseed_independent(other_seed):
    baseline = _run_under_seed(_SPARSE_HASHSEED_SCRIPT, "0")
    assert len(baseline) > 2  # real payload, not an empty object
    assert _run_under_seed(_SPARSE_HASHSEED_SCRIPT, other_seed) == baseline
