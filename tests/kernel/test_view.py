"""Tests for the levelized-CSR GraphView: construction, caching, invalidation."""

import numpy as np
import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.node import Node
from repro.ir.ops import OpKind
from repro.kernel import GraphView
from repro.kernel.reference import (
    graph_adjacency,
    netlist_adjacency,
    reference_longest_path_lengths,
    reference_topological_order,
)
from repro.netlist.gates import GateKind
from repro.netlist.netlist import Netlist


class TestConstruction:
    def test_order_matches_reference_kahn(self, diamond_graph):
        view = GraphView.from_dataflow(diamond_graph)
        assert view.order_ids() == reference_topological_order(
            *graph_adjacency(diamond_graph))

    def test_index_of_is_topological_position(self, adder_chain_graph):
        view = GraphView.from_dataflow(adder_chain_graph)
        assert view.index_of == {nid: i for i, nid in
                                 enumerate(view.order_ids())}

    def test_csr_preserves_operand_order_and_duplicates(self):
        builder = GraphBuilder("dup")
        x = builder.param("x", 8)
        doubled = builder.add(x, x, name="doubled")
        builder.output(doubled)
        view = GraphView.from_dataflow(builder.graph)
        dense = view.index_of[doubled.node_id]
        preds = view.pred_indices[view.pred_indptr[dense]:
                                  view.pred_indptr[dense + 1]]
        assert list(preds) == [view.index_of[x.node_id]] * 2

    def test_levels_match_reference_depths(self, diamond_graph):
        view = GraphView.from_dataflow(diamond_graph)
        ids, operands, _users = graph_adjacency(diamond_graph)
        expected = reference_longest_path_lengths(view.order_ids(), operands)
        assert {nid: int(view.levels[view.index_of[nid]]) for nid in ids} == \
            expected

    def test_level_grouping_partitions_all_nodes(self, diamond_graph):
        view = GraphView.from_dataflow(diamond_graph)
        seen = np.concatenate([view.level_nodes(level)
                               for level in range(view.num_levels)])
        assert sorted(seen) == list(range(view.num_nodes))
        for level in range(view.num_levels):
            assert all(view.levels[i] == level for i in view.level_nodes(level))

    def test_source_mask(self, diamond_graph):
        view = GraphView.from_dataflow(diamond_graph)
        for node in diamond_graph.nodes():
            assert view.source_mask[view.index_of[node.node_id]] == \
                node.is_source

    def test_empty_graph(self):
        view = GraphView.from_dataflow(GraphBuilder("empty").graph)
        assert view.num_nodes == 0 and view.num_levels == 0
        assert view.order_ids() == []

    def test_cycle_raises_with_graph_name(self):
        builder = GraphBuilder("loopy")
        a = builder.param("a", 8)
        b = builder.add(a, a, name="b")
        c = builder.add(b, a, name="c")
        graph = builder.graph
        # White-box: rewire b to consume c, closing a cycle the public API
        # cannot produce.
        graph._nodes[b.node_id] = Node(b.node_id, OpKind.ADD,
                                       (c.node_id, a.node_id), 8, "b")
        graph._users[c.node_id].append(b.node_id)
        with pytest.raises(ValueError, match="'loopy' contains a cycle"):
            GraphView.from_dataflow(graph)

    def test_netlist_cycle_message(self):
        netlist = Netlist("tangled")
        a = netlist.add_input("a")
        g1 = netlist.add_gate(GateKind.INV, (a,))
        g2 = netlist.add_gate(GateKind.INV, (g1,))
        from repro.netlist.gates import Gate
        netlist._gates[g1] = Gate(g1, GateKind.INV, (g2,))
        netlist._fanout[g2].append(g1)
        with pytest.raises(ValueError,
                           match="'tangled' contains a combinational cycle"):
            netlist.topological_order()


class TestCaching:
    def test_dataflow_view_is_cached(self, diamond_graph):
        assert GraphView.from_dataflow(diamond_graph) is \
            GraphView.from_dataflow(diamond_graph)

    def test_structural_edit_invalidates(self, diamond_graph):
        before = GraphView.from_dataflow(diamond_graph)
        node = diamond_graph.add_node(
            OpKind.XOR, [diamond_graph.node_ids()[0]] * 2)
        after = GraphView.from_dataflow(diamond_graph)
        assert after is not before
        assert node.node_id in after.index_of
        assert node.node_id not in before.index_of

    def test_rename_does_not_invalidate(self, diamond_graph):
        before = GraphView.from_dataflow(diamond_graph)
        diamond_graph.set_name(diamond_graph.node_ids()[0], "renamed")
        assert GraphView.from_dataflow(diamond_graph) is before

    def test_copies_do_not_share_cache(self, diamond_graph):
        original = GraphView.from_dataflow(diamond_graph)
        clone = diamond_graph.copy()
        clone_view = GraphView.from_dataflow(clone)
        assert clone_view is not original
        assert clone_view.order_ids() == original.order_ids()

    def test_netlist_caching_and_gate_invalidation(self):
        netlist = Netlist("cached")
        a = netlist.add_input("a")
        netlist.add_gate(GateKind.INV, (a,))
        before = GraphView.from_netlist(netlist)
        assert GraphView.from_netlist(netlist) is before
        netlist.add_gate(GateKind.INV, (a,))
        assert GraphView.from_netlist(netlist) is not before

    def test_netlist_output_marking_keeps_view(self):
        netlist = Netlist("marked")
        a = netlist.add_input("a")
        inv = netlist.add_gate(GateKind.INV, (a,))
        before = GraphView.from_netlist(netlist)
        netlist.mark_output(inv)
        assert GraphView.from_netlist(netlist) is before

    def test_netlist_topological_order_matches_reference(self):
        netlist = Netlist("order")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        g1 = netlist.add_gate(GateKind.AND2, (a, b))
        g2 = netlist.add_gate(GateKind.XOR2, (g1, a))
        netlist.mark_output(g2)
        assert netlist.topological_order() == reference_topological_order(
            *netlist_adjacency(netlist))


class TestAigView:
    def test_levels_match_direct_recurrence(self):
        from repro.aig.aig import Aig, literal_node

        aig = Aig("lvl")
        a = aig.add_input("a")
        b = aig.add_input("b")
        c = aig.add_input("c")
        ab = aig.add_and(a, b)
        abc = aig.add_and(ab, c)
        aig.mark_output(abc)
        expected: dict[int, int] = {}
        for node in aig.nodes():
            if not node.is_and:
                expected[node.node_id] = 0
            else:
                expected[node.node_id] = 1 + max(
                    expected[literal_node(node.fanin0)],
                    expected[literal_node(node.fanin1)])
        assert aig.levels() == expected
        assert aig.depth() == 2

    def test_strash_hit_keeps_cached_view(self):
        from repro.aig.aig import Aig

        aig = Aig("strash")
        a = aig.add_input("a")
        b = aig.add_input("b")
        first = aig.add_and(a, b)
        before = GraphView.from_aig(aig)
        assert aig.add_and(a, b) == first  # structural hash hit, no new node
        assert GraphView.from_aig(aig) is before
        aig.add_and(first, a)
        assert GraphView.from_aig(aig) is not before
