"""Tests for the experiment CLI runner."""

import json

import pytest

from repro.experiments.runner import main, run_experiment, run_experiment_result
from repro.experiments.serialize import SCHEMA_VERSION, experiment_payload


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("table7")


def test_quick_fig8_report_contains_correlation():
    report = run_experiment("fig8", quick=True)
    assert "Pearson correlation" in report
    assert "ps/level" in report


def test_quick_fig5_report_lists_both_strategies():
    report = run_experiment("fig5", quick=True)
    assert "fanout" in report
    assert "delay" in report


def test_json_flag_writes_machine_readable_payload(tmp_path, capsys):
    path = tmp_path / "artifacts" / "fig5.json"
    assert main(["fig5", "--quick", "--json", str(path)]) == 0
    assert "fanout" in capsys.readouterr().out

    payload = json.loads(path.read_text())
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["experiment"] == "fig5"
    assert payload["quick"] is True
    assert payload["jobs"] == 1
    assert payload["elapsed_s"] > 0
    curves = payload["data"]["curves"]
    assert {curve["strategy"] for curve in curves} == {"delay", "fanout"}
    for curve in curves:
        assert curve["registers"]
        assert all(isinstance(r, int) for r in curve["registers"])


def test_jobs_flag_yields_identical_quality_results():
    serial, _ = run_experiment_result("fig5", quick=True, jobs=1)
    parallel, _ = run_experiment_result("fig5", quick=True, jobs=4)
    assert serial == parallel  # dict of frozen dataclasses: field-wise equality


def test_campaign_cli_runs_resumes_and_serializes(tmp_path, capsys):
    store = tmp_path / "campaign.jsonl"
    first_json = tmp_path / "first.json"
    second_json = tmp_path / "second.json"

    assert main(["campaign", "--quick", "--out", str(store),
                 "--json", str(first_json)]) == 0
    out = capsys.readouterr().out
    assert "12 executed, 0 resumed" in out

    # Re-running with --resume answers everything from the checkpoints and
    # produces the identical deterministic payload.
    assert main(["campaign", "--quick", "--out", str(store), "--resume",
                 "--json", str(second_json)]) == 0
    assert "0 executed, 12 resumed" in capsys.readouterr().out

    first = json.loads(first_json.read_text())
    second = json.loads(second_json.read_text())
    assert first["schema"] == SCHEMA_VERSION
    assert first["experiment"] == "campaign"
    assert first["data"]["num_jobs"] == 12
    assert json.dumps(first["data"], sort_keys=True) == \
        json.dumps(second["data"], sort_keys=True)


def test_campaign_without_store_refuses_resume(tmp_path):
    with pytest.raises(SystemExit):
        main(["campaign", "--quick", "--resume"])


def test_campaign_needs_spec_or_quick():
    with pytest.raises(SystemExit):
        main(["campaign"])


def test_campaign_spec_file_drives_the_sweep(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "name": "from-file",
        "designs": ["rrot"],
        "subgraph_counts": [4],
        "max_iterations": 2,
        "backend": "estimator",
        "use_characterized_delays": False,
    }))
    assert main(["campaign", "--spec", str(spec_path)]) == 0
    assert "campaign 'from-file': 1 jobs" in capsys.readouterr().out


def test_campaign_flags_rejected_for_other_experiments(tmp_path):
    with pytest.raises(SystemExit):
        main(["fig8", "--quick", "--out", str(tmp_path / "x.jsonl")])


def test_payload_rejects_unknown_experiment():
    with pytest.raises(ValueError, match="unknown experiment"):
        experiment_payload("table7", object())


def test_payload_roundtrips_through_json():
    result, _ = run_experiment_result("fig8", quick=True)
    payload = experiment_payload("fig8", result, quick=True, jobs=1,
                                 elapsed_s=1.0)
    decoded = json.loads(json.dumps(payload))
    assert decoded["data"]["num_points"] == len(result.points)
    assert decoded["data"]["correlation"] == pytest.approx(result.correlation)


def test_campaign_design_flag_runs_named_designs(capsys):
    assert main(["campaign", "--design", "examples/loop_accum.ir",
                 "--design",
                 "loop:seed=2,depth=3,width=2,bits=16,inputs=2,phis=1,"
                 "dist=1,clock=2500"]) == 0
    out = capsys.readouterr().out
    assert "examples/loop_accum.ir" in out
    # 2 designs x quick axes (2 extraction x 2 subgraph budgets) = 8 jobs.
    assert "8 jobs" in out


def test_campaign_design_flag_extends_spec(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "name": "mini", "designs": ["rrot"], "subgraph_counts": [4],
        "max_iterations": 2, "backend": "estimator",
        "use_characterized_delays": False}))
    assert main(["campaign", "--spec", str(spec_path),
                 "--design", "examples/loop_accum.ir"]) == 0
    out = capsys.readouterr().out
    assert "rrot" in out and "examples/loop_accum.ir" in out


def test_design_flag_rejected_for_other_experiments():
    with pytest.raises(SystemExit):
        main(["fig8", "--quick", "--design", "rrot"])
