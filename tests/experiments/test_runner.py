"""Tests for the experiment CLI runner."""

import pytest

from repro.experiments.runner import run_experiment


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("table7")


def test_quick_fig8_report_contains_correlation():
    report = run_experiment("fig8", quick=True)
    assert "Pearson correlation" in report
    assert "ps/level" in report


def test_quick_fig5_report_lists_both_strategies():
    report = run_experiment("fig5", quick=True)
    assert "fanout" in report
    assert "delay" in report
