"""Tests for the experiment harnesses (scaled-down runs)."""

import pytest

from repro.designs.ml_core import build_ml_core_datapath1, build_ml_core_datapath2
from repro.designs.suite import suite_by_name
from repro.experiments.fig1 import profile_summary, run_delay_profile
from repro.experiments.fig5 import run_extraction_ablation
from repro.experiments.fig6 import run_expansion_ablation
from repro.experiments.fig7 import run_estimation_accuracy
from repro.experiments.fig8 import run_aig_correlation
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.tables import (format_csv, format_table,
                                      geometric_mean, pearson_correlation,
                                      percentile)


class TestHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([5]) == pytest.approx(5.0)

    def test_geometric_mean_rejects_empty_input(self):
        with pytest.raises(ValueError, match="empty"):
            geometric_mean([])

    def test_geometric_mean_rejects_zero_without_floor(self):
        with pytest.raises(ValueError, match="zero"):
            geometric_mean([4.0, 0.0])
        assert geometric_mean([4.0, 0.0], floor=1e-9) > 0.0

    def test_geometric_mean_rejects_negatives_even_with_floor(self):
        with pytest.raises(ValueError, match="negative"):
            geometric_mean([4.0, -1.0], floor=1e-9)

    def test_pearson_correlation_perfect(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert pearson_correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_pearson_correlation_rejects_degenerate_input(self):
        with pytest.raises(ValueError, match="equal length"):
            pearson_correlation([1.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="at least two"):
            pearson_correlation([1.0], [1.0])
        with pytest.raises(ValueError, match="constant"):
            pearson_correlation([1.0, 1.0], [1.0, 2.0])
        assert pearson_correlation([1.0], [1.0], strict=False) == 0.0
        assert pearson_correlation([1.0, 1.0], [1.0, 2.0],
                                   strict=False) == 0.0

    def test_percentile(self):
        assert percentile([3.0], 95.0) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)
        assert percentile([1.0, 2.0], 100.0) == 2.0
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)
        with pytest.raises(ValueError, match="0, 100"):
            percentile([1.0], 150.0)

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2], [30, 40]])
        assert "a" in text and "30" in text
        assert len(text.splitlines()) == 4

    def test_format_table_markdown(self):
        text = format_table(["a", "b"], [[1, 2]], style="markdown")
        lines = text.splitlines()
        assert lines[0].startswith("| a")
        assert set(lines[1]) == {"|", "-"}
        with pytest.raises(ValueError, match="unknown table style"):
            format_table(["a"], [], style="latex")

    def test_format_csv_quotes_commas(self):
        text = format_csv(["name", "n"], [["a,b", 1]])
        assert text == 'name,n\n"a,b",1\n'


class TestTable1:
    @pytest.fixture(scope="class")
    def small_result(self):
        cases = [suite_by_name("ML-core datapath1"), suite_by_name("rrot")]
        return run_table1(cases, subgraphs_per_iteration=8, max_iterations=4)

    def test_rows_and_ratios(self, small_result):
        assert len(small_result.rows) == 2
        assert 0 < small_result.register_ratio <= 1.0
        assert small_result.runtime_ratio > 1.0
        for row in small_result.rows:
            assert row.isdc_registers <= row.sdc_registers
            assert row.isdc_stages <= row.sdc_stages

    def test_formatting_contains_summary_rows(self, small_result):
        text = format_table1(small_result)
        assert "Geo. Mean" in text
        assert "Ratio" in text
        assert "ML-core datapath1" in text


class TestAblations:
    @pytest.fixture(scope="class")
    def small_design(self):
        return build_ml_core_datapath1(lanes=4, width=16), 2500.0

    def test_extraction_ablation_runs_both_strategies(self, small_design):
        design, clock = small_design
        curves = run_extraction_ablation(subgraph_counts=(4,), iterations=3,
                                         design=design, clock_period_ps=clock)
        assert set(curves) == {("delay", 4), ("fanout", 4)}
        for curve in curves.values():
            assert len(curve.registers) >= 1
            assert min(curve.registers) <= curve.registers[0]

    def test_expansion_ablation_runs_three_strategies(self, small_design):
        design, clock = small_design
        curves = run_expansion_ablation(subgraph_counts=(4,), iterations=3,
                                        design=design, clock_period_ps=clock)
        assert {key[0] for key in curves} == {"path", "cone", "window"}

    def test_window_no_worse_than_path(self, small_design):
        design, clock = small_design
        curves = run_expansion_ablation(subgraph_counts=(8,), iterations=4,
                                        design=design, clock_period_ps=clock)
        assert curves[("window", 8)].final_registers <= \
            curves[("path", 8)].final_registers


class TestProfiles:
    @pytest.fixture(scope="class")
    def points(self):
        cases = [suite_by_name("ML-core datapath1"), suite_by_name("rrot")]
        return run_delay_profile(cases, clock_scales=(1.0, 1.5), compute_aig=True)

    def test_profile_points_overestimate(self, points):
        summary = profile_summary(points)
        assert summary["num_points"] > 0
        assert summary["mean_overestimation"] > 0.0
        assert summary["fraction_overestimated"] > 0.5

    def test_aig_correlation_positive(self, points):
        result = run_aig_correlation(points=points)
        assert result.correlation > 0.6
        assert result.ps_per_level > 0


class TestEstimationAccuracy:
    def test_error_shrinks_with_iterations(self):
        cases = [suite_by_name("ML-core datapath1")]
        result = run_estimation_accuracy(cases, max_iterations=4,
                                         subgraphs_per_iteration=8)
        assert len(result.isdc_error) >= 2
        assert result.final_isdc_error <= result.isdc_error[0]
        assert result.final_isdc_error <= result.final_sdc_error + 1e-9
