"""Property-based tests (hypothesis) on the core invariants.

Four families of properties:

* lowering correctness: for random operations and random inputs, the gate
  level netlist computes exactly what the IR interpreter computes;
* optimiser soundness: logic optimisation never changes the function and
  never increases the critical-path delay;
* difference-constraint solving: ASAP solutions are feasible and minimal;
* delay-matrix feedback: updates are monotone (estimates only decrease) and
  propagation keeps the matrix internally consistent.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ir.builder import GraphBuilder
from repro.ir.interpreter import evaluate_graph
from repro.isdc.delay_matrix import DelayMatrix
from repro.isdc.reformulate import propagate_delays
from repro.netlist.lowering import lower_graph
from repro.netlist.optimizer import LogicOptimizer
from repro.netlist.sta import StaticTimingAnalysis
from repro.sdc.constraints import ConstraintSystem
from repro.sdc.delays import NOT_CONNECTED, node_delays
from repro.sdc.solver import SdcInfeasibleError, solve_asap
from repro.tech.delay_model import OperatorModel

_BINARY_OPS = ["add", "sub", "mul", "and_", "or_", "xor", "andn",
               "eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sgt"]


def _random_expression_graph(draw, max_ops: int = 6, width: int = 8):
    """Build a random DFG of binary ops over three parameters."""
    builder = GraphBuilder("random_expr")
    pool = [builder.param("p0", width), builder.param("p1", width),
            builder.param("p2", width)]
    num_ops = draw(st.integers(min_value=1, max_value=max_ops))
    for _ in range(num_ops):
        method = draw(st.sampled_from(_BINARY_OPS))
        left = draw(st.sampled_from(pool))
        right = draw(st.sampled_from(pool))
        result = getattr(builder, method)(left, right)
        if result.width < width:
            result = builder.zero_ext(result, width)
        pool.append(result)
    builder.output(pool[-1])
    return builder.graph


@st.composite
def expression_graphs(draw):
    return _random_expression_graph(draw)


class TestLoweringMatchesInterpreter:
    @given(graph=expression_graphs(),
           values=st.tuples(st.integers(0, 255), st.integers(0, 255),
                            st.integers(0, 255)))
    @settings(max_examples=40, deadline=None)
    def test_random_expression_graphs(self, graph, values):
        inputs = {"p0": values[0], "p1": values[1], "p2": values[2]}
        reference = evaluate_graph(graph, inputs)
        lowered = lower_graph(graph)
        input_bits = {}
        for node_id, bits in lowered.input_bits.items():
            value = reference[node_id]
            for index, gate_id in enumerate(bits):
                input_bits[gate_id] = (value >> index) & 1
        simulated = lowered.netlist.simulate(input_bits)
        for node_id, bits in lowered.output_bits.items():
            value = sum(simulated[gate_id] << index
                        for index, gate_id in enumerate(bits))
            assert value == reference[node_id]


class TestOptimizerSoundness:
    @given(graph=expression_graphs(), seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_function_preserved_and_delay_not_worse(self, graph, seed):
        lowered = lower_graph(graph)
        original = lowered.netlist
        optimized, _ = LogicOptimizer().optimize(original)
        sta = StaticTimingAnalysis()
        assert sta.run(optimized).critical_path_delay_ps <= \
            sta.run(original).critical_path_delay_ps + 1e-9

        import random

        rng = random.Random(seed)
        original_inputs = original.inputs()
        optimized_inputs = optimized.inputs()
        bits = [rng.randint(0, 1) for _ in original_inputs]
        original_values = original.simulate(dict(zip(original_inputs, bits)))
        optimized_values = optimized.simulate(dict(zip(optimized_inputs, bits)))
        for a, b in zip(original.outputs(), optimized.outputs()):
            assert original_values[a] == optimized_values[b]


class TestDifferenceConstraintSolver:
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7),
                              st.integers(0, 3)), min_size=1, max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_asap_is_feasible_and_minimal(self, edges):
        system = ConstraintSystem()
        for node in range(8):
            system.add_variable(node)
        for u, v, distance in edges:
            if u == v:
                continue
            # Only forward constraints (u < v) keep the system acyclic.
            low, high = min(u, v), max(u, v)
            system.add_timing(low, high, distance)
        try:
            schedule = solve_asap(system)
        except SdcInfeasibleError:
            return
        assert system.is_feasible_schedule(schedule)
        # Minimality: lowering any single variable by one breaks feasibility
        # or it was already at zero.
        for node, value in schedule.items():
            if value == 0:
                continue
            lowered = dict(schedule)
            lowered[node] = value - 1
            assert not system.is_feasible_schedule(lowered)


class TestDelayMatrixProperties:
    @given(graph=expression_graphs(),
           delay=st.floats(min_value=1.0, max_value=500.0),
           subset_seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_feedback_is_monotone_and_consistent(self, graph, delay, subset_seed):
        import random

        delays = node_delays(graph, OperatorModel(pessimism=1.0))
        matrix = DelayMatrix.from_graph(graph, delays)
        before = matrix.matrix.copy()

        rng = random.Random(subset_seed)
        operations = [n.node_id for n in graph.nodes() if not n.is_source]
        subset = rng.sample(operations, k=min(3, len(operations)))
        matrix.update_with_subgraph(subset, delay)
        propagate_delays(matrix)
        after = matrix.matrix

        connected_before = before != NOT_CONNECTED
        connected_after = after != NOT_CONNECTED
        # Connectivity never changes and estimates never increase.
        assert (connected_before == connected_after).all()
        assert (after[connected_before] <= before[connected_before] + 1e-6).all()
