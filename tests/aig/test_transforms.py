"""Tests for netlist-to-AIG conversion and AIG balancing."""

import random

import pytest

from repro.aig.aig import literal_node
from repro.aig.from_netlist import netlist_to_aig
from repro.aig.transforms import balance_aig
from repro.ir.builder import GraphBuilder
from repro.netlist.gates import GateKind
from repro.netlist.lowering import lower_graph
from repro.netlist.netlist import Netlist

_RNG = random.Random(99)


def _netlist_vs_aig(netlist: Netlist, trials: int = 16) -> None:
    """Check that the AIG computes the same function as the netlist."""
    aig = netlist_to_aig(netlist)
    netlist_inputs = netlist.inputs()
    aig_inputs = aig.inputs()
    assert len(netlist_inputs) == len(aig_inputs)
    for _ in range(trials):
        bits = [_RNG.randint(0, 1) for _ in netlist_inputs]
        netlist_values = netlist.simulate(dict(zip(netlist_inputs, bits)))
        aig_values = aig.evaluate(dict(zip(aig_inputs, bits)))
        for net_out, aig_out in zip(netlist.outputs(), aig.outputs()):
            assert netlist_values[net_out] == aig_values[aig_out]


class TestConversion:
    def test_all_gate_kinds_convert(self):
        netlist = Netlist("gates")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        c = netlist.add_input("c")
        for kind in (GateKind.AND2, GateKind.OR2, GateKind.NAND2, GateKind.NOR2,
                     GateKind.XOR2, GateKind.XNOR2, GateKind.ANDN2):
            netlist.mark_output(netlist.add_gate(kind, (a, b)))
        netlist.mark_output(netlist.add_gate(GateKind.MUX2, (a, b, c)))
        netlist.mark_output(netlist.add_gate(GateKind.MAJ3, (a, b, c)))
        netlist.mark_output(netlist.add_gate(GateKind.INV, (a,)))
        netlist.mark_output(netlist.add_gate(GateKind.BUF, (b,)))
        netlist.mark_output(netlist.add_constant(1))
        _netlist_vs_aig(netlist)

    def test_lowered_adder_converts(self):
        builder = GraphBuilder("adder")
        x = builder.param("x", 6)
        y = builder.param("y", 6)
        builder.output(builder.add(x, y))
        _netlist_vs_aig(lower_graph(builder.graph).netlist)

    def test_depth_positive_for_logic(self):
        builder = GraphBuilder("depth")
        x = builder.param("x", 8)
        y = builder.param("y", 8)
        builder.output(builder.mul(x, y))
        aig = netlist_to_aig(lower_graph(builder.graph).netlist)
        assert aig.depth() > 8
        assert aig.num_ands() > 50


class TestBalancing:
    def test_balancing_reduces_chain_depth(self):
        aig_source = Netlist("chain")
        inputs = [aig_source.add_input(f"i{i}") for i in range(16)]
        current = inputs[0]
        for gate_input in inputs[1:]:
            current = aig_source.add_gate(GateKind.AND2, (current, gate_input))
        aig_source.mark_output(current)
        aig = netlist_to_aig(aig_source)
        balanced = balance_aig(aig)
        assert aig.depth() == 15
        assert balanced.depth() <= 5

    def test_balancing_preserves_function(self):
        netlist = Netlist("balance_fn")
        inputs = [netlist.add_input(f"i{i}") for i in range(9)]
        current = inputs[0]
        for gate_input in inputs[1:]:
            current = netlist.add_gate(GateKind.AND2, (current, gate_input))
        netlist.mark_output(current)
        aig = netlist_to_aig(netlist)
        balanced = balance_aig(aig)
        for _ in range(20):
            bits = [_RNG.randint(0, 1) for _ in inputs]
            original = aig.evaluate(dict(zip(aig.inputs(), bits)))
            rebuilt = balanced.evaluate(dict(zip(balanced.inputs(), bits)))
            for a_out, b_out in zip(aig.outputs(), balanced.outputs()):
                assert original[a_out] == rebuilt[b_out]

    def test_balancing_never_increases_depth(self):
        builder = GraphBuilder("no_worse")
        x = builder.param("x", 8)
        y = builder.param("y", 8)
        builder.output(builder.add(builder.mul(x, y), x))
        aig = netlist_to_aig(lower_graph(builder.graph).netlist)
        assert balance_aig(aig).depth() <= aig.depth()
