"""Tests for the AIG data structure."""

import pytest

from repro.aig.aig import (
    Aig,
    FALSE_LITERAL,
    TRUE_LITERAL,
    literal_complemented,
    literal_negate,
    literal_node,
    make_literal,
)


class TestLiterals:
    def test_encoding_round_trip(self):
        literal = make_literal(5, complemented=True)
        assert literal_node(literal) == 5
        assert literal_complemented(literal)
        assert not literal_complemented(literal_negate(literal))

    def test_constants(self):
        assert literal_node(TRUE_LITERAL) == 0
        assert literal_negate(TRUE_LITERAL) == FALSE_LITERAL


class TestStructuralHashing:
    def test_identical_ands_are_shared(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        first = aig.add_and(a, b)
        second = aig.add_and(b, a)
        assert first == second
        assert aig.num_ands() == 1

    def test_trivial_simplifications(self):
        aig = Aig()
        a = aig.add_input("a")
        assert aig.add_and(a, TRUE_LITERAL) == a
        assert aig.add_and(a, FALSE_LITERAL) == FALSE_LITERAL
        assert aig.add_and(a, a) == a
        assert aig.add_and(a, literal_negate(a)) == FALSE_LITERAL
        assert aig.num_ands() == 0


class TestEvaluation:
    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_derived_gates(self, a, b):
        aig = Aig()
        lit_a = aig.add_input("a")
        lit_b = aig.add_input("b")
        or_lit = aig.add_or(lit_a, lit_b)
        xor_lit = aig.add_xor(lit_a, lit_b)
        aig.mark_output(or_lit)
        aig.mark_output(xor_lit)
        values = aig.evaluate({literal_node(lit_a): a, literal_node(lit_b): b})
        assert values[or_lit] == (a | b)
        assert values[xor_lit] == (a ^ b)

    @pytest.mark.parametrize("s,t,f", [(0, 1, 0), (1, 1, 0), (1, 0, 1), (0, 0, 1)])
    def test_mux(self, s, t, f):
        aig = Aig()
        sel = aig.add_input("s")
        on_true = aig.add_input("t")
        on_false = aig.add_input("f")
        out = aig.add_mux(sel, on_true, on_false)
        aig.mark_output(out)
        values = aig.evaluate({literal_node(sel): s, literal_node(on_true): t,
                               literal_node(on_false): f})
        assert values[out] == (t if s else f)

    def test_maj(self):
        aig = Aig()
        inputs = [aig.add_input(str(i)) for i in range(3)]
        out = aig.add_maj(*inputs)
        aig.mark_output(out)
        for pattern in range(8):
            bits = [(pattern >> i) & 1 for i in range(3)]
            values = aig.evaluate({literal_node(lit): bit
                                   for lit, bit in zip(inputs, bits)})
            assert values[out] == (1 if sum(bits) >= 2 else 0)


class TestDepth:
    def test_depth_of_chain(self):
        aig = Aig()
        inputs = [aig.add_input(str(i)) for i in range(5)]
        current = inputs[0]
        for literal in inputs[1:]:
            current = aig.add_and(current, literal)
        aig.mark_output(current)
        assert aig.depth() == 4

    def test_depth_of_empty(self):
        assert Aig().depth() == 0

    def test_cone_size(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        c = aig.add_input("c")
        left = aig.add_and(a, b)
        root = aig.add_and(left, c)
        assert aig.cone_size([root]) == 2
        assert aig.cone_size([left]) == 1
