"""Tests for the ArtifactStore: appends, compaction, GC, merge, verify."""

import json

import pytest

from repro.store import ArtifactStore, GcPolicy, StoreRecord


def _record(kind="payload", key="k1", schema=1, body=None, t=None):
    return StoreRecord(kind=kind, key=key, schema=schema,
                       body=body if body is not None else {"v": key}, t=t)


class TestPutAndGet:
    def test_put_appends_one_envelope_line(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ArtifactStore(path).open_for_append()
        store.put(_record(key="a"))
        store.put(_record(key="b"))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["key"] for line in lines] == ["a", "b"]
        assert all(set(line) == {"kind", "key", "schema", "body"}
                   for line in lines)

    def test_last_record_wins_per_identity(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.jsonl").open_for_append()
        store.put(_record(key="a", body={"v": 1}))
        store.put(_record(key="a", body={"v": 2}))
        assert len(store) == 1
        assert store.get("payload", "a").body == {"v": 2}
        reloaded = ArtifactStore.load(store.path)
        assert reloaded.get("payload", "a").body == {"v": 2}

    def test_kinds_are_distinct_key_spaces(self):
        store = ArtifactStore()
        store.put(_record(kind="payload", key="a"))
        store.put(_record(kind="dse-probe", key="a"))
        assert len(store) == 2
        assert ("payload", "a") in store and ("dse-probe", "a") in store
        assert [r.kind for r in store.kind("dse-probe")] == ["dse-probe"]
        assert store.kinds() == {"payload": 1, "dse-probe": 1}

    def test_in_memory_store_supports_the_protocol(self):
        store = ArtifactStore()
        assert store.put_many([_record(key="a"), _record(key="b")]) == 2
        assert store.get("payload", "a") is not None
        assert store.compact().num_records == 2


class TestCrashTolerance:
    def test_open_for_append_truncates_the_torn_tail(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ArtifactStore(path).open_for_append().put(_record(key="a"))
        with path.open("a") as handle:
            handle.write('{"kind": "payload", "key": "to')
        store = ArtifactStore(path).open_for_append()
        assert len(store) == 1
        assert path.read_text().endswith("}\n")
        store.put(_record(key="b"))
        assert len(ArtifactStore.load(path)) == 2

    def test_load_is_read_only_even_with_a_torn_tail(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ArtifactStore(path).open_for_append().put(_record(key="a"))
        with path.open("a") as handle:
            handle.write('{"torn')
        before = path.read_bytes()
        assert len(ArtifactStore.load(path)) == 1
        assert path.read_bytes() == before

    def test_strict_load_raises_on_mid_file_corruption(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text('{broken}\n' + _record(key="a").to_line())
        with pytest.raises(ValueError, match="corrupt at line"):
            ArtifactStore.load(path)

    def test_strict_load_raises_on_non_envelope_records(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text('{"kind": "header", "fingerprint": "legacy"}\n')
        with pytest.raises(ValueError, match="non-envelope"):
            ArtifactStore.load(path)

    def test_tolerant_load_counts_and_skips(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text('not json\n{"foreign": true}\n'
                        + _record(key="a").to_line())
        store = ArtifactStore.load(path, tolerant=True)
        assert len(store) == 1 and store.skipped_lines == 2


class TestCompaction:
    def test_compact_drops_superseded_records_atomically(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ArtifactStore(path).open_for_append()
        for version in range(5):
            store.put(_record(key="hot", body={"v": version}))
        store.put(_record(key="cold"))
        report = store.compact()
        assert report.dropped == 4
        assert report.num_records == 2
        assert report.bytes_after < report.bytes_before
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert ArtifactStore.load(path).get("payload", "hot").body == {"v": 4}

    def test_compact_preserves_first_appearance_order(self, tmp_path):
        """A campaign header appended first stays first after compaction."""
        path = tmp_path / "store.jsonl"
        store = ArtifactStore(path).open_for_append()
        store.put(_record(kind="campaign-header", key="fp"))
        store.put(_record(kind="campaign-job", key="j1"))
        store.put(_record(kind="campaign-header", key="fp", body={"v": 2}))
        store.compact()
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "campaign-header"
        assert first["body"] == {"v": 2}

    def test_repeated_runs_stop_growing_the_file(self, tmp_path):
        """Compaction bounds the file: re-putting the same identities and
        compacting converges to a fixed size instead of growing forever."""
        path = tmp_path / "store.jsonl"
        sizes = []
        for _ in range(3):
            store = ArtifactStore(path).open_for_append()
            for key in ("a", "b", "c"):
                store.put(_record(key=key))
            store.compact()
            sizes.append(path.stat().st_size)
        assert sizes[0] == sizes[1] == sizes[2]


class TestGc:
    def test_age_policy_drops_old_timestamped_records(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.jsonl").open_for_append()
        store.put(_record(key="old", t=1000.0))
        store.put(_record(key="new", t=2000.0))
        store.put(_record(key="ageless"))  # no timestamp: never ages out
        report = store.gc(GcPolicy(max_age_s=500.0), now=2100.0)
        assert report.dropped == 1
        assert store.get("payload", "old") is None
        assert store.get("payload", "new") is not None
        assert store.get("payload", "ageless") is not None

    def test_size_pressure_evicts_oldest_unpinned_first(self, tmp_path):
        store = ArtifactStore(tmp_path / "store.jsonl").open_for_append()
        store.put(_record(kind="campaign-header", key="fp"))
        for key in ("a", "b", "c", "d"):
            store.put(_record(key=key))
        store.gc(GcPolicy(max_records=3), now=0.0)
        assert len(store) == 3
        # The pinned header survives; the oldest payloads went first.
        assert store.get("campaign-header", "fp") is not None
        assert store.get("payload", "a") is None
        assert store.get("payload", "d") is not None

    def test_max_bytes_shrinks_the_file(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ArtifactStore(path).open_for_append()
        for index in range(50):
            store.put(_record(key=f"k{index:02d}"))
        budget = path.stat().st_size // 2
        store.gc(GcPolicy(max_bytes=budget), now=0.0)
        assert path.stat().st_size <= budget


class TestMergeAndVerify:
    def test_merge_folds_worker_shards_idempotently(self, tmp_path):
        main = ArtifactStore(tmp_path / "main.jsonl").open_for_append()
        main.put(_record(key="shared", body={"from": "main"}))
        shards = []
        for worker in range(3):
            shard = ArtifactStore(
                tmp_path / f"shard{worker}.jsonl").open_for_append()
            shard.put(_record(key="shared", body={"from": f"w{worker}"}))
            shard.put(_record(key=f"only-{worker}"))
            shards.append(shard.path)
        assert main.merge(shards) == 3
        # The main store wins on shared identities; merging again adds nothing.
        assert main.get("payload", "shared").body == {"from": "main"}
        assert main.merge(shards) == 0
        assert len(ArtifactStore.load(main.path)) == 4

    def test_merge_tolerates_a_shard_with_a_torn_tail(self, tmp_path):
        shard_path = tmp_path / "shard.jsonl"
        ArtifactStore(shard_path).open_for_append().put(_record(key="a"))
        with shard_path.open("a") as handle:
            handle.write('{"kind": "payload", "key": "to')
        main = ArtifactStore(tmp_path / "main.jsonl").open_for_append()
        assert main.merge([shard_path]) == 1

    def test_verify_reports_health_without_modifying(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ArtifactStore(path).open_for_append()
        store.put(_record(key="a"))
        store.put(_record(key="a", body={"v": 2}))
        with path.open("a") as handle:
            handle.write('{"torn')
        before = path.read_bytes()
        report = ArtifactStore.load(path).verify()
        assert report.num_records == 1
        assert report.dropped == 1
        assert report.torn_tail
        assert path.read_bytes() == before
