"""Tests for the shared torn-tail JSONL parser and crash-safe appends.

Satellite of the persistence unification: the parser that used to live
privately in ``repro/campaign/store.py`` is now the one implementation in
:mod:`repro.store.jsonl`, with the mid-file vs trailing corruption split
pinned down here.
"""

import json

import pytest

from repro.store import (append_line, append_lines, parse_jsonl_tail,
                         truncate_torn_tail)


def _lines(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestParseJsonlTail:
    def test_clean_file_has_no_tail(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        path.write_text('{"a": 1}\n{"a": 2}\n')
        records, complete, tail, skipped = parse_jsonl_tail(path)
        assert records == [{"a": 1}, {"a": 2}]
        assert complete == [b'{"a": 1}', b'{"a": 2}']
        assert tail == b"" and skipped == 0

    def test_unterminated_final_line_is_the_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"a": 1}\n{"a": 2')
        records, _, tail, _ = parse_jsonl_tail(path)
        assert records == [{"a": 1}]
        assert tail == b'{"a": 2}'[:-1]

    def test_corrupt_final_line_with_newline_is_the_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"a": 1}\n{broken}\n')
        records, complete, tail, _ = parse_jsonl_tail(path)
        assert records == [{"a": 1}]
        assert tail == b"{broken}"
        assert complete == [b'{"a": 1}']

    def test_mid_file_corruption_raises_in_strict_mode(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"a": 1}\n{broken}\n{"a": 3}\n')
        with pytest.raises(ValueError, match="corrupt at line 2"):
            parse_jsonl_tail(path)

    def test_mid_file_corruption_is_counted_in_tolerant_mode(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"a": 1}\n{broken}\nnot json either\n{"a": 3}\n')
        records, _, tail, skipped = parse_jsonl_tail(path, tolerant=True)
        assert records == [{"a": 1}, {"a": 3}]
        assert skipped == 2 and tail == b""

    def test_blank_lines_are_ignored_not_corruption(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"a": 1}\n\n   \n{"a": 2}\n')
        records, _, _, skipped = parse_jsonl_tail(path)
        assert records == [{"a": 1}, {"a": 2}] and skipped == 0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            parse_jsonl_tail(tmp_path / "nope.jsonl")


class TestTruncateTornTail:
    def test_drops_only_the_torn_bytes(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"a": 1}\n{"a": 2')
        _, complete, tail, _ = parse_jsonl_tail(path)
        assert truncate_torn_tail(path, complete, tail)
        assert path.read_text() == '{"a": 1}\n'

    def test_noop_without_a_tail(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        path.write_text('{"a": 1}\n')
        before = path.read_bytes()
        _, complete, tail, _ = parse_jsonl_tail(path)
        assert not truncate_torn_tail(path, complete, tail)
        assert path.read_bytes() == before


class TestAppend:
    def test_append_creates_parents_and_appends(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "log.jsonl"
        append_line(path, '{"a": 1}\n')
        append_line(path, '{"a": 2}\n', fsync=True)
        assert _lines(path) == [{"a": 1}, {"a": 2}]

    def test_append_lines_batches(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_lines(path, ['{"a": 1}\n', '{"a": 2}\n', '{"a": 3}\n'])
        assert _lines(path) == [{"a": 1}, {"a": 2}, {"a": 3}]

    def test_append_after_truncated_tail_is_clean(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_line(path, '{"a": 1}\n')
        with path.open("a") as handle:
            handle.write('{"a": 2')  # simulated kill mid-append
        _, complete, tail, _ = parse_jsonl_tail(path)
        truncate_torn_tail(path, complete, tail)
        append_line(path, '{"a": 3}\n')
        assert _lines(path) == [{"a": 1}, {"a": 3}]
