"""Advisory file-lock tests: reentrancy, contention, multi-process safety."""

import json
import os
import subprocess
import sys

import pytest

from repro.store import ArtifactStore, FileLock, LockTimeoutError, StoreRecord
from repro.store.lock import LOCK_SUFFIX


class TestFileLock:
    def test_sidecar_path_and_context_manager(self, tmp_path):
        target = tmp_path / "store.jsonl"
        lock = FileLock(target)
        assert str(lock.path) == str(target) + LOCK_SUFFIX
        assert not lock.held
        with lock:
            assert lock.held
            assert lock.path.exists()
        assert not lock.held

    def test_reentrant_within_one_object(self, tmp_path):
        lock = FileLock(tmp_path / "s.jsonl")
        with lock:
            with lock:  # depth 2, no deadlock
                assert lock.held
            assert lock.held  # inner exit only dropped one level
        assert not lock.held

    def test_release_of_unheld_lock_is_an_error(self, tmp_path):
        with pytest.raises(RuntimeError, match="unheld"):
            FileLock(tmp_path / "s.jsonl").release()

    def test_contention_times_out_with_a_typed_error(self, tmp_path):
        target = tmp_path / "s.jsonl"
        holder = FileLock(target)
        holder.acquire()
        try:
            contender = FileLock(target, timeout_s=0.05, poll_s=0.005)
            with pytest.raises(LockTimeoutError, match="could not lock"):
                contender.acquire()
            assert not contender.held
        finally:
            holder.release()
        # Once released, the contender gets through immediately.
        with FileLock(target, timeout_s=1.0):
            pass

    def test_two_objects_on_one_file_exclude_each_other(self, tmp_path):
        target = tmp_path / "s.jsonl"
        with FileLock(target):
            with pytest.raises(LockTimeoutError):
                FileLock(target, timeout_s=0.05, poll_s=0.005).acquire()


class TestStoreLocking:
    def test_store_exposes_its_lock(self, tmp_path):
        store = ArtifactStore(tmp_path / "s.jsonl")
        with store.lock() as lock:
            assert isinstance(lock, FileLock)
            # The store's own operations re-acquire reentrantly under us.
            store.open_for_append()
            store.put(StoreRecord(kind="payload", key="k", schema=1,
                                  body={"v": 1}))
        assert not store.lock().held

    def test_in_memory_store_lock_is_a_noop(self):
        with ArtifactStore().lock():
            pass  # _NullLock: no file, no error

    def test_locking_disabled_skips_the_sidecar(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ArtifactStore(path, locking=False).open_for_append()
        store.put(StoreRecord(kind="payload", key="k", schema=1, body={}))
        assert not (tmp_path / ("s.jsonl" + LOCK_SUFFIX)).exists()

    def test_held_lock_blocks_another_processes_append(self, tmp_path):
        path = tmp_path / "s.jsonl"
        ArtifactStore(path).open_for_append()
        script = (
            "import sys\n"
            "from repro.store import ArtifactStore, StoreRecord\n"
            "from repro.store.lock import LockTimeoutError\n"
            "store = ArtifactStore(sys.argv[1])\n"
            "store._lock.timeout_s = 0.2\n"
            "store._lock.poll_s = 0.01\n"
            "try:\n"
            "    store.open_for_append()\n"
            "except LockTimeoutError:\n"
            "    print('timed-out')\n"
        )
        with ArtifactStore(path).lock():
            completed = subprocess.run(
                [sys.executable, "-c", script, str(path)], env=_env(),
                capture_output=True, text=True, timeout=60)
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.strip() == "timed-out"


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")
    return env


def test_concurrent_multiprocess_appends_stay_parseable(tmp_path):
    """N processes hammer one store; a strict load then sees every record."""
    path = tmp_path / "shared.jsonl"
    writers, per_writer = 4, 25
    script = (
        "import sys\n"
        "from repro.store import ArtifactStore, StoreRecord\n"
        "path, writer, count = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])\n"
        "store = ArtifactStore(path).open_for_append(tolerant=True)\n"
        "for i in range(count):\n"
        "    store.put(StoreRecord(kind='payload', key=f'w{writer}-{i}',\n"
        "                          schema=1, body={'writer': writer, 'i': i}))\n"
    )
    procs = [subprocess.Popen(
        [sys.executable, "-c", script, str(path), str(writer),
         str(per_writer)], env=_env(), stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True) for writer in range(writers)]
    for proc in procs:
        _, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err

    # Strict (non-tolerant) load: one torn or interleaved line would raise.
    store = ArtifactStore.load(path)
    assert store.skipped_lines == 0
    records = list(store.kind("payload"))
    assert len(records) == writers * per_writer
    assert {record.key for record in records} == {
        f"w{writer}-{i}" for writer in range(writers)
        for i in range(per_writer)}
