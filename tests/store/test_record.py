"""Tests for the store record envelope and the content-key scheme."""

import json

import pytest

from repro.store import (KEY_BYTES, StoreRecord, canonical_json, content_key,
                         is_store_record)


class TestContentKey:
    def test_key_is_hex_of_fixed_length(self):
        key = content_key({"design": "rrot", "config": {"m": 8}})
        assert len(key) == KEY_BYTES * 2
        int(key, 16)  # raises if not hex

    def test_key_is_insertion_order_independent(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_key_is_value_sensitive(self):
        assert content_key({"a": 1}) != content_key({"a": 2})

    def test_matches_campaign_job_id_scheme(self):
        """Store keys use the exact digest scheme campaign job ids use."""
        import hashlib

        payload = {"design": "rrot", "config": {"clock_period_ps": 1000}}
        expected = hashlib.sha256(
            json.dumps(payload, sort_keys=True,
                       separators=(",", ":")).encode()).hexdigest()[:32]
        assert content_key(payload) == expected

    def test_canonical_json_has_no_whitespace(self):
        assert " " not in canonical_json({"a": [1, 2], "b": {"c": 3}})


class TestStoreRecord:
    def test_round_trips_through_dict_and_line(self):
        record = StoreRecord(kind="payload", key=content_key({"x": 1}),
                             schema=3, body={"x": 1})
        assert StoreRecord.from_dict(record.to_dict()) == record
        assert StoreRecord.from_dict(json.loads(record.to_line())) == record

    def test_timestamp_rides_on_the_envelope_but_not_identity(self):
        plain = StoreRecord(kind="payload", key="ab", schema=1, body={})
        stamped = StoreRecord(kind="payload", key="ab", schema=1, body={},
                              t=123.5)
        assert "t" not in plain.to_dict()
        assert stamped.to_dict()["t"] == 123.5
        assert plain.identity == stamped.identity

    def test_from_dict_rejects_malformed_envelopes(self):
        with pytest.raises(ValueError, match="not a store record"):
            StoreRecord.from_dict({"kind": "payload", "key": "ab"})

    @pytest.mark.parametrize("envelope", [
        None,
        [],
        {"kind": "payload", "key": "ab", "schema": 1},        # no body
        {"kind": "payload", "key": "", "schema": 1, "body": {}},
        {"kind": "", "key": "ab", "schema": 1, "body": {}},
        {"kind": "payload", "key": "ab", "schema": "1", "body": {}},
        {"kind": "header", "fingerprint": "ab"},              # legacy campaign
        {"key": "ab", "backend": "x", "name": "n"},           # legacy cache
    ])
    def test_is_store_record_rejects(self, envelope):
        assert not is_store_record(envelope)

    def test_is_store_record_accepts_unknown_kinds(self):
        """The store is kind-agnostic; STORE_KINDS is documentation."""
        assert is_store_record({"kind": "future-kind", "key": "ab",
                                "schema": 9, "body": {"v": 1}})
