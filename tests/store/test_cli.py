"""Tests of ``runner store``: dispatch and the maintenance subcommands."""

import json

import pytest

from repro.experiments.runner import main
from repro.store import ArtifactStore, StoreRecord


def _seeded_store(path, duplicates=0):
    store = ArtifactStore(path).open_for_append()
    store.put(StoreRecord(kind="campaign-header", key="f" * 32, schema=2,
                          body={"fingerprint": "f" * 32, "spec": {}}))
    store.put(StoreRecord(kind="payload", key="p1", schema=6,
                          body={"experiment": "dse"}))
    for version in range(duplicates):
        store.put(StoreRecord(kind="payload", key="p1", schema=6,
                              body={"experiment": "dse", "v": version}))
    return store


class TestDispatch:
    def test_runner_routes_the_store_subcommand(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        _seeded_store(path)
        assert main(["store", "ls", str(path)]) == 0
        out = capsys.readouterr().out
        assert "campaign-header" in out and "payload" in out
        assert "2 records" in out

    def test_missing_input_is_a_clean_cli_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "verify", str(tmp_path / "nope.jsonl")])


class TestSubcommands:
    def test_ls_filters_by_kind_and_emits_json(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        _seeded_store(path)
        assert main(["store", "ls", str(path), "--kind", "payload",
                     "--json"]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
        assert lines == [{"kind": "payload", "key": "p1", "schema": 6}]

    def test_verify_reports_duplicates_and_torn_tail(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        _seeded_store(path, duplicates=2)
        with path.open("a") as handle:
            handle.write('{"kind": "payload", "key": "to')
        assert main(["store", "verify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 records" in out
        assert "2 superseded duplicates" in out
        assert "torn tail: yes" in out

    def test_compact_drops_superseded_records(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        _seeded_store(path, duplicates=3)
        assert len(path.read_text().splitlines()) == 5
        assert main(["store", "compact", str(path)]) == 0
        assert "dropped 3 superseded records" in capsys.readouterr().out
        assert len(path.read_text().splitlines()) == 2

    def test_gc_applies_the_retention_policy(self, tmp_path, capsys):
        path = tmp_path / "store.jsonl"
        store = _seeded_store(path)
        for index in range(8):
            store.put(StoreRecord(kind="synth-eval", key=f"e{index}",
                                  schema=1, body={}))
        assert main(["store", "gc", str(path), "--max-records", "4"]) == 0
        out = capsys.readouterr().out
        assert "kept 4" in out
        survivors = ArtifactStore.load(path)
        assert len(survivors) == 4
        # The campaign header is pinned against size pressure.
        assert survivors.get("campaign-header", "f" * 32) is not None

    def test_migrate_folds_legacy_files(self, tmp_path, capsys):
        legacy = tmp_path / "legacy.jsonl"
        legacy.write_text(json.dumps(
            {"kind": "header", "schema": 1, "name": "sweep",
             "fingerprint": "f" * 32, "num_jobs": 0, "spec": {}}) + "\n")
        payload = tmp_path / "payload.json"
        payload.write_text(json.dumps(
            {"schema": 2, "experiment": "table1", "data": {"rows": []}}))
        destination = tmp_path / "unified.jsonl"
        assert main(["store", "migrate", str(legacy), str(payload),
                     "--into", str(destination)]) == 0
        out = capsys.readouterr().out
        assert "run-store-v1 -> 1 records" in out
        assert "payload-json -> 1 records" in out
        merged = ArtifactStore.load(destination)
        assert merged.kinds() == {"campaign-header": 1, "payload": 1}
