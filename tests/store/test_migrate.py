"""Tests for legacy-format sniffing and migration into the unified store."""

import json

import pytest

from repro.store import (ArtifactStore, migrate_file, migrate_records,
                         payload_key, sniff_format, synth_eval_key)


def _legacy_run_store(path):
    lines = [
        {"kind": "header", "schema": 1, "name": "sweep",
         "fingerprint": "f" * 32, "num_jobs": 2, "spec": {"name": "sweep"}},
        {"kind": "job", "job_id": "a" * 32, "design": "rrot",
         "result": {"final": {"registers": 9}}, "runtime_s": 0.5},
        {"kind": "job", "job_id": "b" * 32, "design": "crc32",
         "result": {"final": {"registers": 7}}, "runtime_s": 0.7},
    ]
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))


def _legacy_cache(path):
    lines = [
        {"key": "fp1", "backend": "SynthesisFlow,optimize=True",
         "name": "sub1", "delay_ps": 100.0, "num_gates": 5,
         "num_gates_unoptimized": 7, "area_um2": 1.5, "aig_depth": None,
         "node_ids": [1, 2]},
        {"key": "fp2", "backend": "SynthesisFlow,optimize=True",
         "name": "sub2", "delay_ps": 200.0, "num_gates": 9,
         "num_gates_unoptimized": 9, "area_um2": 2.5, "aig_depth": 4,
         "node_ids": [3]},
    ]
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))


def _payload(path):
    envelope = {"schema": 3, "experiment": "table1", "quick": True,
                "jobs": 1, "solver": "full", "elapsed_s": 1.0,
                "data": {"rows": [{"benchmark": "rrot"}]}}
    path.write_text(json.dumps(envelope, indent=2) + "\n")
    return envelope


class TestSniffFormat:
    def test_recognises_all_four_formats(self, tmp_path):
        from repro.store import StoreRecord

        run_store = tmp_path / "run.jsonl"
        cache = tmp_path / "cache.jsonl"
        payload = tmp_path / "payload.json"
        unified = tmp_path / "store.jsonl"
        _legacy_run_store(run_store)
        _legacy_cache(cache)
        _payload(payload)
        ArtifactStore(unified).open_for_append().put(
            StoreRecord(kind="payload", key="ab", schema=1, body={}))
        assert sniff_format(run_store) == "run-store-v1"
        assert sniff_format(cache) == "cache-jsonl"
        assert sniff_format(payload) == "payload-json"
        assert sniff_format(unified) == "store"

    def test_unrecognised_files_sniff_to_none(self, tmp_path):
        other = tmp_path / "other.txt"
        other.write_text("just text\n")
        assert sniff_format(other) is None


class TestMigrateRecords:
    def test_run_store_v1_becomes_campaign_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _legacy_run_store(path)
        detected, records = migrate_records(path)
        assert detected == "run-store-v1"
        kinds = [record.kind for record in records]
        assert kinds == ["campaign-header", "campaign-job", "campaign-job"]
        header = records[0]
        assert header.key == "f" * 32
        assert header.body["num_jobs"] == 2
        job = records[1]
        assert job.key == "a" * 32
        assert job.body == {"design": "rrot",
                            "result": {"final": {"registers": 9}},
                            "runtime_s": 0.5}

    def test_cache_jsonl_becomes_synth_eval_records(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        _legacy_cache(path)
        detected, records = migrate_records(path)
        assert detected == "cache-jsonl"
        assert all(record.kind == "synth-eval" for record in records)
        first = records[0]
        assert first.key == synth_eval_key("SynthesisFlow,optimize=True",
                                           "fp1")
        assert first.body["fingerprint"] == "fp1"
        assert first.body["delay_ps"] == 100.0

    def test_payload_becomes_one_payload_record(self, tmp_path):
        path = tmp_path / "payload.json"
        envelope = _payload(path)
        detected, records = migrate_records(path)
        assert detected == "payload-json"
        assert len(records) == 1
        assert records[0].kind == "payload"
        assert records[0].key == payload_key(envelope)
        assert records[0].body == envelope

    def test_unified_store_round_trips(self, tmp_path):
        cache = tmp_path / "cache.jsonl"
        _legacy_cache(cache)
        _, cache_records = migrate_records(cache)
        path = tmp_path / "store.jsonl"
        store = ArtifactStore(path).open_for_append()
        store.put_many(cache_records)
        detected, records = migrate_records(path)
        assert detected == "store"
        assert records == list(store.records.values())

    def test_unrecognised_file_raises(self, tmp_path):
        path = tmp_path / "other.txt"
        path.write_text("just text\n")
        with pytest.raises(ValueError, match="not a recognised"):
            migrate_records(path)


class TestMigrateFile:
    def test_folds_all_three_legacy_formats_into_one_store(self, tmp_path):
        run_store = tmp_path / "run.jsonl"
        cache = tmp_path / "cache.jsonl"
        payload = tmp_path / "payload.json"
        _legacy_run_store(run_store)
        _legacy_cache(cache)
        _payload(payload)
        destination = tmp_path / "unified.jsonl"
        total = 0
        for source in (run_store, cache, payload):
            _, added = migrate_file(source, destination)
            total += added
        assert total == 6
        merged = ArtifactStore.load(destination)
        assert merged.kinds() == {"campaign-header": 1, "campaign-job": 2,
                                  "synth-eval": 2, "payload": 1}

    def test_migration_is_idempotent(self, tmp_path):
        source = tmp_path / "run.jsonl"
        _legacy_run_store(source)
        destination = tmp_path / "unified.jsonl"
        _, first = migrate_file(source, destination)
        _, second = migrate_file(source, destination)
        assert first == 3 and second == 0
        assert len(ArtifactStore.load(destination)) == 3

    def test_destination_wins_on_duplicate_identities(self, tmp_path):
        from repro.store import campaign_job_record

        source = tmp_path / "run.jsonl"
        _legacy_run_store(source)
        destination = tmp_path / "unified.jsonl"
        existing = ArtifactStore(destination).open_for_append()
        existing.put(campaign_job_record("a" * 32, {"design": "rrot",
                                                    "result": {"kept": True},
                                                    "runtime_s": 0.0}))
        migrate_file(source, destination)
        merged = ArtifactStore.load(destination)
        assert merged.get("campaign-job", "a" * 32).body["result"] == \
            {"kept": True}
