"""The committed legacy fixtures still migrate and load, byte for byte.

``tests/fixtures/legacy/`` holds one file per historical on-disk format:
a schema-1 campaign run store, a flat cache JSONL, and one runner
``--json`` payload per envelope schema 2-5.  These files are frozen --
they are what real users have on disk -- so this module is the contract
that ``runner store migrate`` plus :mod:`repro.report.frame` keep reading
them forever.  CI runs this file as the ``store-migration`` smoke job.
"""

import json
from pathlib import Path

import pytest

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import RunStore
from repro.report.frame import (load_any, load_artifact_store,
                                load_experiment_payload, load_run_store)
from repro.store import ArtifactStore, migrate_file, sniff_format

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "legacy"
PAYLOADS = sorted(FIXTURES.glob("payload_schema*.json"))


def _freeze(path):
    return path.read_bytes()


class TestFixtureInventory:
    def test_all_formats_are_represented(self):
        assert sniff_format(FIXTURES / "campaign_v1.jsonl") == "run-store-v1"
        assert sniff_format(FIXTURES / "cache_v1.jsonl") == "cache-jsonl"
        assert [path.name for path in PAYLOADS] == [
            "payload_schema2.json", "payload_schema3.json",
            "payload_schema4.json", "payload_schema5.json"]
        for path in PAYLOADS:
            assert sniff_format(path) == "payload-json"

    def test_payload_fixtures_cover_schemas_2_to_5(self):
        schemas = [json.loads(path.read_text())["schema"] for path in PAYLOADS]
        assert schemas == [2, 3, 4, 5]


class TestCampaignFixture:
    def test_loads_read_only_through_every_entry_point(self):
        path = FIXTURES / "campaign_v1.jsonl"
        before = _freeze(path)
        store = RunStore.load(path)
        assert store.header["name"] == "fixture-sweep"
        assert len(store.results) == store.header["num_jobs"] == 4
        frame = load_any(path)
        assert len(frame.rows) == 4
        assert frame.rows[0].axes["design"] == "rrot"
        assert path.read_bytes() == before  # analysis never migrates

    def test_migrated_store_yields_a_byte_identical_frame(self, tmp_path):
        legacy = FIXTURES / "campaign_v1.jsonl"
        unified = tmp_path / "unified.jsonl"
        detected, added = migrate_file(legacy, unified)
        assert detected == "run-store-v1" and added == 5
        legacy_rows = load_run_store(legacy, source="s").rows
        migrated_rows = load_artifact_store(unified, source="s").rows
        assert migrated_rows == legacy_rows

    def test_final_payload_survives_migration_and_compaction(self, tmp_path):
        legacy = FIXTURES / "campaign_v1.jsonl"
        unified = tmp_path / "unified.jsonl"
        migrate_file(legacy, unified)
        spec = CampaignSpec.from_dict(RunStore.load(legacy).header["spec"])
        want = json.dumps(RunStore.load(legacy).final_payload(spec),
                          sort_keys=True)
        got = json.dumps(RunStore.load(unified).final_payload(spec),
                         sort_keys=True)
        assert got == want
        ArtifactStore(unified).open_for_append().compact()
        compacted = json.dumps(RunStore.load(unified).final_payload(spec),
                               sort_keys=True)
        assert compacted == want


class TestCacheFixture:
    def test_migrates_to_synth_eval_records(self, tmp_path):
        from repro.store import synth_eval_key

        legacy = FIXTURES / "cache_v1.jsonl"
        before = _freeze(legacy)
        unified = tmp_path / "unified.jsonl"
        detected, added = migrate_file(legacy, unified)
        assert detected == "cache-jsonl" and added == 3
        store = ArtifactStore.load(unified)
        assert store.kinds() == {"synth-eval": 3}
        for record in store.kind("synth-eval"):
            assert record.key == synth_eval_key(record.body["backend"],
                                                record.body["fingerprint"])
        assert legacy.read_bytes() == before

    def test_legacy_records_never_match_explicit_signatures(self, tmp_path):
        # Legacy attribute-probed signatures are invalidated by design: the
        # explicit signature() family tags never collide with them, so a
        # migrated cache entry is a clean miss, not a wrong answer.
        from repro.synth.flow import SynthesisFlow

        legacy = json.loads(
            (FIXTURES / "cache_v1.jsonl").read_text().splitlines()[0])
        assert not legacy["backend"].startswith("SynthesisFlow(")
        assert SynthesisFlow().signature().startswith("SynthesisFlow(")


class TestPayloadFixtures:
    @pytest.mark.parametrize("path", PAYLOADS, ids=lambda p: p.stem)
    def test_loads_directly_and_through_the_migrated_store(self, path,
                                                           tmp_path):
        before = _freeze(path)
        direct = load_experiment_payload(path, source="s").rows
        assert direct, f"{path.name} produced no rows"
        unified = tmp_path / "unified.jsonl"
        detected, added = migrate_file(path, unified)
        assert detected == "payload-json" and added == 1
        migrated = load_artifact_store(unified, source="s").rows
        assert migrated == direct
        assert path.read_bytes() == before


class TestFoldedStore:
    def test_all_fixtures_fold_into_one_store_and_load(self, tmp_path):
        unified = tmp_path / "unified.jsonl"
        sources = [FIXTURES / "campaign_v1.jsonl",
                   FIXTURES / "cache_v1.jsonl", *PAYLOADS]
        for source in sources:
            migrate_file(source, unified)
        store = ArtifactStore.load(unified)
        assert store.kinds() == {"campaign-header": 1, "campaign-job": 4,
                                 "synth-eval": 3, "payload": 4}
        frame = load_any(unified)
        # 4 campaign jobs + 4 payload-campaign jobs (same ids, both kept as
        # rows) + 1 + 1 table1 rows + 1 dse row.
        assert len(frame.rows) == 11
        designs = {row.axes.get("design") for row in frame.rows}
        assert {"rrot", "crc32"} <= designs

    def test_folding_twice_changes_nothing(self, tmp_path):
        unified = tmp_path / "unified.jsonl"
        for _ in range(2):
            for source in (FIXTURES / "campaign_v1.jsonl",
                           FIXTURES / "cache_v1.jsonl", *PAYLOADS):
                migrate_file(source, unified)
        store = ArtifactStore.load(unified)
        assert len(store) == 12
