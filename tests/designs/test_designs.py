"""Tests for the benchmark design generators: structure and functionality."""

import pytest

from repro.designs import (
    build_binary_divide,
    build_crc32,
    build_fpexp32,
    build_float32_fast_rsqrt,
    build_hsv2rgb,
    build_internal_datapath,
    build_ml_core_datapath0_all,
    build_ml_core_datapath0_opcode,
    build_ml_core_datapath1,
    build_ml_core_datapath2,
    build_rrot,
    build_sha256,
    build_video_core_datapath,
    table1_suite,
)
from repro.designs.suite import ablation_design, suite_by_name
from repro.ir.analysis import graph_statistics
from repro.ir.interpreter import evaluate_outputs
from repro.ir.verify import verify_graph
from repro.synth.estimator import CharacterizedOperatorModel


class TestSuiteStructure:
    def test_seventeen_cases_in_paper_order(self):
        suite = table1_suite()
        assert len(suite) == 17
        assert suite[0].name == "ML-core datapath1"
        assert suite[-1].name == "fpexp 32"
        assert suite[15].name == "sha256"

    def test_all_designs_verify(self):
        for case in table1_suite():
            verify_graph(case.build())

    def test_clock_periods_are_2500_or_5000(self):
        for case in table1_suite():
            assert case.clock_period_ps in (2500.0, 5000.0)

    def test_clock_covers_slowest_operation(self):
        model = CharacterizedOperatorModel()
        for case in table1_suite():
            graph = case.build()
            worst = max(model.node_delay(node) for node in graph.nodes())
            assert worst <= case.clock_period_ps - 150.0, case.name

    def test_build_renames_graph_to_row_name(self):
        case = suite_by_name("crc32")
        assert case.build().name == "crc32"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            suite_by_name("does-not-exist")

    def test_ablation_design(self):
        graph, clock = ablation_design()
        verify_graph(graph)
        assert clock == 2500.0

    def test_largest_design_is_sha256(self):
        sizes = {case.name: graph_statistics(case.build()).num_operations
                 for case in table1_suite()}
        assert max(sizes, key=sizes.get) == "sha256"


class TestFunctionalCorrectness:
    def test_crc32_matches_reference(self):
        def crc32_reference(crc, data, steps, poly=0xEDB88320):
            for i in range(steps):
                bit = (crc ^ (data >> i)) & 1
                crc >>= 1
                if bit:
                    crc ^= poly
            return crc

        graph = build_crc32(num_steps=8)
        for crc, data in ((0xFFFFFFFF, 0xA5), (0x12345678, 0x00), (0, 0xFF)):
            outputs = evaluate_outputs(graph, {"crc_in": crc, "data_in": data})
            assert outputs["crc_out"] == crc32_reference(crc, data, 8)

    def test_binary_divide_matches_python(self):
        graph = build_binary_divide(width=8)
        for dividend, divisor in ((200, 7), (255, 16), (13, 200), (99, 1)):
            outputs = evaluate_outputs(graph, {"dividend": dividend,
                                               "divisor": divisor})
            assert outputs["quotient"] == dividend // divisor
            assert outputs["remainder"] == dividend % divisor

    def test_rrot_first_round_is_rotate_xor(self):
        graph = build_rrot(width=32, num_rounds=1)
        value, mix, amount = 0x80000001, 0x0F0F0F0F, 4
        rotated = ((value >> amount) | (value << (32 - amount))) & 0xFFFFFFFF
        outputs = evaluate_outputs(graph, {"value": value, "mix": mix,
                                           "amount": amount})
        assert outputs["rrot_out"] == rotated ^ mix

    def test_sha256_deterministic_and_width_correct(self):
        graph = build_sha256(num_rounds=4)
        inputs = {name: index + 1 for index, name in
                  enumerate("abcdefgh")}
        inputs.update({f"w{i}": 0x11111111 * (i + 1) for i in range(4)})
        first = evaluate_outputs(graph, inputs)
        second = evaluate_outputs(graph, inputs)
        assert first == second
        assert all(0 <= value < (1 << 32) for value in first.values())

    def test_ml_core_datapath1_is_dot_product(self):
        graph = build_ml_core_datapath1(lanes=4, width=16)
        inputs = {f"act{i}": i + 1 for i in range(4)}
        inputs.update({f"wgt{i}": 10 * (i + 1) for i in range(4)})
        inputs["bias"] = 5
        outputs = evaluate_outputs(graph, inputs)
        expected = sum((i + 1) * 10 * (i + 1) for i in range(4)) + 5
        assert outputs["out"] == expected & 0xFFFF


class TestParameterisation:
    def test_crc32_size_scales_with_steps(self):
        assert len(build_crc32(num_steps=16)) > len(build_crc32(num_steps=4))

    def test_sha256_size_scales_with_rounds(self):
        assert len(build_sha256(num_rounds=8)) > len(build_sha256(num_rounds=2))

    def test_internal_datapath_scales_with_rounds(self):
        assert len(build_internal_datapath(num_rounds=16)) > \
            len(build_internal_datapath(num_rounds=4))

    def test_opcode_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build_ml_core_datapath0_opcode(7)

    def test_all_generators_produce_verifiable_graphs(self):
        generators = [
            lambda: build_crc32(4), lambda: build_sha256(2),
            lambda: build_rrot(16, 2), lambda: build_binary_divide(4),
            lambda: build_float32_fast_rsqrt(newton_iterations=1),
            lambda: build_fpexp32(polynomial_degree=2, num_segments=1),
            build_hsv2rgb, lambda: build_video_core_datapath(taps=3),
            lambda: build_internal_datapath(num_rounds=2),
            build_ml_core_datapath0_all,
            lambda: build_ml_core_datapath1(lanes=2),
            lambda: build_ml_core_datapath2(lanes=2, depth=1),
        ] + [lambda op=op: build_ml_core_datapath0_opcode(op) for op in range(5)]
        for generator in generators:
            verify_graph(generator())
