"""Test package (gives test modules unique import names)."""
