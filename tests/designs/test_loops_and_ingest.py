"""Tests for the ``loop:`` design tier and ``.ir`` file ingestion."""

import pytest

from repro.designs.generator import case_from_name
from repro.designs.ingest import ir_file_case, is_ir_path, load_ir_design
from repro.designs.loops import (LoopParams, build_loop_design, loop_case,
                                 loop_suite)
from repro.ir.textual import graph_to_text
from repro.ir.verify import verify_graph


class TestLoopParams:
    def test_name_round_trips(self):
        params = LoopParams(seed=3, depth=5, width=4, bit_width=8,
                            num_inputs=3, num_phis=2, max_distance=2,
                            clock_period_ps=5000.0)
        assert LoopParams.from_name(params.name) == params

    def test_defaults_apply_for_optional_fields(self):
        params = LoopParams.from_name(
            "loop:seed=0,depth=4,width=3,bits=16,inputs=2,phis=2")
        assert params.max_distance == 1
        assert params.clock_period_ps == 2500.0

    def test_malformed_names_raise_value_error(self):
        for bad in ("gen:seed=0", "loop:seed", "loop:seed=x,depth=4",
                    "loop:depth=4"):
            with pytest.raises(ValueError):
                LoopParams.from_name(bad)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LoopParams(num_phis=0)
        with pytest.raises(ValueError):
            LoopParams(num_phis=5, width=3)
        with pytest.raises(ValueError):
            LoopParams(max_distance=0)


class TestBuildLoopDesign:
    def test_same_params_build_identical_graphs(self):
        params = LoopParams(seed=7, max_distance=3)
        assert (graph_to_text(build_loop_design(params))
                == graph_to_text(build_loop_design(params)))

    def test_different_seeds_differ(self):
        a = graph_to_text(build_loop_design(LoopParams(seed=1)))
        b = graph_to_text(build_loop_design(LoopParams(seed=2)))
        assert a != b

    def test_every_suite_member_verifies_and_has_back_edges(self):
        for case in loop_suite(count=3):
            graph = case.build()
            verify_graph(graph)
            assert graph.has_back_edges
            assert len(graph.back_edges()) == 2  # default num_phis

    def test_case_resolves_through_registry(self):
        params = LoopParams(seed=4)
        case = case_from_name(params.name)
        assert case.name == params.name
        assert case.clock_period_ps == params.clock_period_ps
        assert case.build().has_back_edges

    def test_loop_case_names_graph_after_params(self):
        params = LoopParams(seed=11)
        assert loop_case(params).build().name == params.name


class TestIrIngestion:
    def test_is_ir_path(self):
        assert is_ir_path("examples/loop_accum.ir")
        assert not is_ir_path("rrot")

    def test_example_file_loads_with_clock(self):
        graph, clock_ps = load_ir_design("examples/loop_accum.ir")
        assert clock_ps == 2500.0
        assert graph.has_back_edges
        verify_graph(graph)

    def test_missing_file_is_value_error(self):
        with pytest.raises(ValueError, match="not found"):
            load_ir_design("no/such/file.ir")

    def test_parse_error_names_file_and_line(self, tmp_path):
        bad = tmp_path / "bad.ir"
        bad.write_text("design g\nn0 = frobnicate() : 8\n")
        with pytest.raises(ValueError, match=r"bad\.ir.*line 2"):
            load_ir_design(str(bad))

    def test_verification_error_is_value_error(self, tmp_path):
        bad = tmp_path / "orphan_phi.ir"
        bad.write_text("design g\nn0 = constant(value=0) : 8\n"
                       "n1 = phi(n0) : 8\nn2 = output(n1) : 8\n")
        with pytest.raises(ValueError, match="back-edge"):
            load_ir_design(str(bad))

    def test_default_clock_when_directive_missing(self, tmp_path):
        plain = tmp_path / "plain.ir"
        plain.write_text("design g\nn0 = param() : 8\nn1 = output(n0) : 8\n")
        case = ir_file_case(str(plain))
        assert case.clock_period_ps == 2500.0
        assert len(case.build()) == 2

    def test_case_resolves_through_registry(self):
        case = case_from_name("examples/loop_accum.ir")
        assert case.name == "examples/loop_accum.ir"
        assert case.build().has_back_edges
