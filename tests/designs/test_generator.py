"""Tests for the seeded parametric design generator."""

import pytest

from repro.designs.generator import (
    GeneratorParams,
    build_generated_design,
    case_from_name,
    generated_suite,
)
from repro.ir.verify import verify_graph
from repro.synth.fingerprint import subgraph_fingerprint


def _full_fingerprint(graph):
    return subgraph_fingerprint(graph, graph.node_ids())


def test_same_params_build_identical_graphs():
    params = GeneratorParams(seed=7, depth=5, width=3)
    assert _full_fingerprint(build_generated_design(params)) == \
        _full_fingerprint(build_generated_design(params))


def test_different_seeds_build_different_graphs():
    a = build_generated_design(GeneratorParams(seed=1))
    b = build_generated_design(GeneratorParams(seed=2))
    assert _full_fingerprint(a) != _full_fingerprint(b)


def test_generated_graphs_verify_and_have_outputs():
    for case in generated_suite(count=3, seed=11, depth=4, width=3):
        graph = case.build()
        verify_graph(graph)
        assert graph.outputs()


def test_shape_parameters_control_size():
    small = build_generated_design(GeneratorParams(seed=0, depth=3, width=2))
    large = build_generated_design(GeneratorParams(seed=0, depth=8, width=6))
    assert len(large) > len(small)


def test_name_round_trips_through_parser():
    params = GeneratorParams(seed=5, depth=7, width=2, fanout=3, bit_width=8,
                             num_inputs=3, clock_period_ps=5000.0)
    assert GeneratorParams.from_name(params.name) == params


def test_case_from_name_resolves_both_registries():
    generated = case_from_name(GeneratorParams(seed=9).name)
    assert generated.build().outputs()
    assert case_from_name("rrot").name == "rrot"
    with pytest.raises(KeyError):
        case_from_name("no such design")
    with pytest.raises(ValueError):
        case_from_name("gen:seed=oops")


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        GeneratorParams(depth=0)
    with pytest.raises(ValueError):
        GeneratorParams(op_mix=(("frobnicate", 1),))
