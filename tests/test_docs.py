"""Documentation integrity: internal Markdown links must resolve.

Scans README.md and docs/*.md for relative links (and heading anchors)
and asserts the targets exist, so a renamed file or section breaks the
build instead of the docs.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (lowercase, drop punctuation)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set:
    return {github_anchor(h) for h in _HEADING.findall(path.read_text())}


def internal_links():
    for doc in DOC_FILES:
        for target in _LINK.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            yield pytest.param(doc, target,
                               id=f"{doc.relative_to(REPO_ROOT)}:{target}")


@pytest.mark.parametrize("doc, target", internal_links())
def test_internal_link_resolves(doc, target):
    path_part, _, anchor = target.partition("#")
    resolved = (doc.parent / path_part).resolve() if path_part else doc
    assert resolved.exists(), f"{doc.name} links to missing file {path_part}"
    if anchor:
        assert resolved.suffix == ".md", \
            f"anchor link into non-markdown file {path_part}"
        assert anchor in anchors_of(resolved), \
            f"{doc.name} links to missing anchor #{anchor} in {resolved.name}"


def test_docs_tree_is_complete():
    names = {path.name for path in DOC_FILES}
    assert {"README.md", "architecture.md", "file-formats.md",
            "cli.md"} <= names
