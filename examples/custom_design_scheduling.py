#!/usr/bin/env python3
"""Schedule a hand-written datapath through the public API.

This example shows the full workflow a downstream user of the library would
follow for their own design rather than a bundled benchmark:

1. describe a datapath with :class:`~repro.ir.GraphBuilder` (here: a small
   fixed-point FIR filter followed by a saturating requantisation step);
2. inspect the naive per-operation delay estimates and the post-synthesis
   delay of the whole datapath (the Fig.-1 gap);
3. schedule it with plain SDC and with ISDC at two different clock targets;
4. print the resulting pipelines stage by stage.

Run with::

    python examples/custom_design_scheduling.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.ir import GraphBuilder, verify_graph
from repro.isdc import IsdcConfig, IsdcScheduler
from repro.synth import CharacterizedOperatorModel, SynthesisFlow


def build_fir_datapath(taps: int = 4, width: int = 16):
    """A ``taps``-tap FIR filter with rounding and saturation."""
    builder = GraphBuilder("custom_fir")
    samples = [builder.param(f"x{i}", width) for i in range(taps)]
    coefficients = [builder.param(f"c{i}", width) for i in range(taps)]

    products = [builder.mul(s, c, name=f"prod{i}")
                for i, (s, c) in enumerate(zip(samples, coefficients))]
    scaled = [builder.shrl_const(p, 2, name=f"scaled{i}")
              for i, p in enumerate(products)]
    accumulated = builder.add_tree(scaled, name="acc")

    rounded = builder.add(accumulated, builder.constant(1 << 3, width), name="round")
    requantised = builder.shrl_const(rounded, 4, name="requant")
    limit = builder.constant((1 << (width - 2)) - 1, width, name="limit")
    saturated = builder.select(builder.ugt(requantised, limit), limit, requantised,
                               name="saturate")
    builder.output(saturated, name="y")
    verify_graph(builder.graph)
    return builder.graph


def describe_schedule(label: str, result) -> None:
    report = result.final_report
    print(f"--- {label}: {report.num_stages} stages, "
          f"{report.num_registers} register bits, slack {report.slack_ps:.0f} ps")
    schedule = result.final_schedule
    for stage, node_ids in schedule.stage_node_map().items():
        names = [schedule.graph.node(nid).name for nid in node_ids
                 if not schedule.graph.node(nid).is_source]
        if names:
            print(f"    stage {stage}: {', '.join(names)}")


def main() -> None:
    graph = build_fir_datapath()

    # The Fig.-1 gap for this datapath: the scheduler's critical-path estimate
    # (sum of isolated operator delays along the worst path) vs. the
    # post-synthesis delay of the whole (combinational) design.
    from repro.sdc.delays import critical_path_matrix, node_delays

    model = CharacterizedOperatorModel()
    matrix, _ = critical_path_matrix(graph, node_delays(graph, model))
    estimated_critical_path = float(matrix.max())
    measured = SynthesisFlow().evaluate_graph(graph).delay_ps
    print(f"estimated critical-path delay (isolated sums): {estimated_critical_path:8.0f} ps")
    print(f"post-synthesis delay of the design:            {measured:8.0f} ps")
    print(f"over-estimation: {estimated_critical_path / measured - 1:.0%}\n")

    for clock in (5000.0, 3000.0):
        config = IsdcConfig(clock_period_ps=clock, subgraphs_per_iteration=8,
                            max_iterations=10, track_estimation_error=False)
        result = IsdcScheduler(config).schedule(graph)
        print(f"=== clock target {clock:.0f} ps "
              f"({1e6 / clock:.0f} MHz) ===")
        describe_schedule("ISDC", result)
        print(f"    (SDC baseline used {result.initial_report.num_stages} stages / "
              f"{result.initial_report.num_registers} register bits; "
              f"ISDC saved {result.register_reduction:.0%})\n")


if __name__ == "__main__":
    main()
