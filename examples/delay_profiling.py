#!/usr/bin/env python3
"""Reproduce the motivation studies: Fig. 1 and Fig. 8.

Sweeps several benchmark designs over a range of clock periods, profiles each
pipeline stage's estimated vs. post-synthesis delay (Fig. 1), and correlates
the post-synthesis delay with the stage's AIG depth (Fig. 8).

Run with::

    python examples/delay_profiling.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.experiments.fig1 import format_profile, profile_summary, run_delay_profile
from repro.experiments.fig8 import format_aig_correlation, run_aig_correlation


def main() -> None:
    print("Profiling design points (this lowers and synthesises every pipeline "
          "stage of every schedule in the sweep)...\n")
    points = run_delay_profile(compute_aig=True)

    print("Fig. 1 -- estimated vs. post-synthesis critical-path delay")
    print(format_profile(points, max_rows=15))
    summary = profile_summary(points)
    print(f"\n  -> HLS estimates exceed post-synthesis STA on "
          f"{summary['fraction_overestimated']:.0%} of design points, by "
          f"{summary['mean_overestimation']:.0%} on average: this unused slack "
          f"is what ISDC's feedback loop reclaims.\n")

    print("Fig. 8 -- post-synthesis STA delay vs. AIG depth")
    correlation = run_aig_correlation(points=points)
    print("  " + format_aig_correlation(correlation))
    print("\n  -> the strong linear correlation suggests AIG depth as a cheap "
          "alternative feedback signal (paper Section V).")


if __name__ == "__main__":
    main()
