#!/usr/bin/env python3
"""Reproduce the paper's ablation studies (Fig. 5 and Fig. 6) from the API.

Runs the delay-driven vs. fanout-driven ranking comparison and the
path/cone/window expansion comparison on the ablation design and prints the
register-usage trajectory of every configuration as a small ASCII chart.

Run with::

    python examples/extraction_strategy_ablation.py            # quick
    python examples/extraction_strategy_ablation.py --full     # paper settings
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.experiments.fig5 import run_extraction_ablation
from repro.experiments.fig6 import run_expansion_ablation


def ascii_curve(registers: tuple[int, ...], width: int = 40) -> str:
    """Render a register-usage trajectory as a compact sparkline."""
    if not registers:
        return ""
    low, high = min(registers), max(registers)
    span = max(1, high - low)
    blocks = " .:-=+*#%@"
    return "".join(blocks[int((value - low) / span * (len(blocks) - 1))]
                   for value in registers[:width])


def print_curves(title: str, curves) -> None:
    print(f"\n{title}")
    for (label, count), curve in sorted(curves.items()):
        print(f"  {label:>7s} m={count:2d}  start={curve.registers[0]:5d}  "
              f"final={curve.final_registers:5d}  "
              f"best@iter={curve.iterations_to_best:2d}  "
              f"[{ascii_curve(curve.registers)}]")


def main() -> None:
    full = "--full" in sys.argv
    counts = (4, 8, 16) if full else (4, 16)
    iterations = 30 if full else 10

    extraction = run_extraction_ablation(subgraph_counts=counts,
                                         iterations=iterations)
    print_curves("Fig. 5 -- delay-driven vs. fanout-driven (path expansion)",
                 extraction)

    expansion = run_expansion_ablation(subgraph_counts=counts,
                                       iterations=iterations)
    print_curves("Fig. 6 -- path vs. cone vs. window (fanout-driven)", expansion)

    fanout_final = min(curve.final_registers for (label, _), curve
                       in extraction.items() if label == "fanout")
    delay_final = min(curve.final_registers for (label, _), curve
                      in extraction.items() if label == "delay")
    print(f"\nfanout-driven best: {fanout_final} register bits; "
          f"delay-driven best: {delay_final} register bits")


if __name__ == "__main__":
    main()
