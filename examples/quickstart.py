#!/usr/bin/env python3
"""Quickstart: schedule one design with SDC, then refine it with ISDC.

Builds the crc32 benchmark, schedules it with the classic SDC scheduler, runs
the ISDC feedback loop, and prints the before/after pipeline quality -- the
single-design version of the paper's Table I row.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.designs import build_crc32
from repro.ir import graph_statistics
from repro.isdc import IsdcConfig, IsdcScheduler


def main() -> None:
    graph = build_crc32(num_steps=24)
    stats = graph_statistics(graph)
    print(f"design: {graph.name} ({stats.num_operations} operations, "
          f"{stats.total_bits} result bits, depth {stats.max_depth})")

    config = IsdcConfig(
        clock_period_ps=2500.0,      # 400 MHz target
        subgraphs_per_iteration=16,  # the paper's Table-I setting
        max_iterations=15,
        verbose=True,                # one line per iteration
    )
    result = IsdcScheduler(config).schedule(graph)

    initial, final = result.initial_report, result.final_report
    print()
    print(f"{'':24s} {'SDC baseline':>14s} {'ISDC':>14s}")
    print(f"{'pipeline stages':24s} {initial.num_stages:14d} {final.num_stages:14d}")
    print(f"{'pipeline registers':24s} {initial.num_registers:14d} "
          f"{final.num_registers:14d}")
    print(f"{'post-synthesis slack':24s} {initial.slack_ps:14.1f} "
          f"{final.slack_ps:14.1f}")
    print()
    print(f"register reduction : {result.register_reduction:.1%}")
    print(f"iterations run     : {result.iterations}")
    print(f"runtime multiplier : {result.runtime_ratio:.1f}x over plain SDC")


if __name__ == "__main__":
    main()
