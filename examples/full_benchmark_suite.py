#!/usr/bin/env python3
"""Regenerate the paper's Table I on the full 17-design benchmark suite.

Runs plain SDC and ISDC (fanout-driven, window-based, 16 subgraphs per
iteration, up to 15 iterations) on every benchmark and prints the full table
with the geometric-mean summary and ratio rows, in the paper's format.

Run with::

    python examples/full_benchmark_suite.py              # all 17 designs
    python examples/full_benchmark_suite.py --quick      # reduced iterations
    python examples/full_benchmark_suite.py --jobs 4     # 4 worker processes
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.experiments.table1 import format_table1, run_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="benchmark cases evaluated concurrently "
                             "(results identical to --jobs 1)")
    arguments = parser.parse_args()
    quick = arguments.quick
    subgraphs = 8 if quick else 16
    iterations = 6 if quick else 15

    print(f"Running Table I ({'quick' if quick else 'full'} settings: "
          f"m={subgraphs}, up to {iterations} iterations per design, "
          f"jobs={arguments.jobs})...\n")
    result = run_table1(subgraphs_per_iteration=subgraphs,
                        max_iterations=iterations,
                        verbose=arguments.jobs == 1, jobs=arguments.jobs)

    print()
    print(format_table1(result))
    print()
    print(f"register ratio (ISDC/SDC geo-mean): {result.register_ratio:.1%} "
          f"(paper: 71.5%)")
    print(f"stage ratio:                        {result.stage_ratio:.1%} "
          f"(paper: 70.0%)")
    print(f"slack ratio:                        {result.slack_ratio:.1%} "
          f"(paper: 60.9%)")
    print(f"runtime multiplier:                 {result.runtime_ratio:.1f}x "
          f"(paper: ~40x)")


if __name__ == "__main__":
    main()
